package bitset_test

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/bitset"
)

// randomSet draws a set of length n whose bits form runs: run-heavy with
// probability ½ (the DBLP-like shape), uniform-random otherwise, plus the
// all-empty and all-full corners.
func randomSet(rng *rand.Rand, n int) *bitset.Set {
	s := bitset.New(n)
	switch rng.Intn(6) {
	case 0: // empty
	case 1: // full
		s.SetAll()
	case 2, 3: // run-heavy: a few contiguous spans
		for k := 0; k < 1+rng.Intn(4); k++ {
			if n == 0 {
				break
			}
			lo := rng.Intn(n)
			hi := lo + 1 + rng.Intn(n-lo)
			for i := lo; i < hi; i++ {
				s.Add(i)
			}
		}
	default: // uniform
		for i := 0; i < n; i++ {
			if rng.Intn(3) == 0 {
				s.Add(i)
			}
		}
	}
	return s
}

// TestRunsEquivalence is the property suite of satellite 1: every Vector
// combinator on the compressed form must agree with the dense Set,
// including across the zero-padded length-mismatch semantics (masks both
// shorter and longer than the vector).
func TestRunsEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	lengths := []int{0, 1, 63, 64, 65, 128, 200, 512, 1000}
	for trial := 0; trial < 300; trial++ {
		n := lengths[rng.Intn(len(lengths))]
		s := randomSet(rng, n)
		r := bitset.RunsOf(s)

		if r.Len() != s.Len() || r.Count() != s.Count() || r.IsEmpty() != s.IsEmpty() {
			t.Fatalf("n=%d: Len/Count/IsEmpty diverge: runs(%d,%d) dense(%d,%d)",
				n, r.Len(), r.Count(), s.Len(), s.Count())
		}
		if r.String() != s.String() {
			t.Fatalf("n=%d: String diverges\nruns:  %s\ndense: %s", n, r, s)
		}
		if !r.Dense().Equal(s) {
			t.Fatalf("n=%d: Dense round-trip diverges", n)
		}
		if r.NumRuns() != s.NumRuns() {
			t.Fatalf("n=%d: NumRuns %d (runs) vs %d (dense)", n, r.NumRuns(), s.NumRuns())
		}

		for _, i := range []int{0, 1, n / 2, n - 1, n, n + 10} {
			if i < 0 {
				continue
			}
			if r.Contains(i) != s.Contains(i) {
				t.Fatalf("n=%d: Contains(%d) diverges", n, i)
			}
			if r.Next(i) != s.Next(i) {
				t.Fatalf("n=%d: Next(%d): runs %d dense %d", n, i, r.Next(i), s.Next(i))
			}
		}

		var a, b []int
		r.ForEach(func(i int) { a = append(a, i) })
		s.ForEach(func(i int) { b = append(b, i) })
		if !equalInts(a, b) {
			t.Fatalf("n=%d: ForEach diverges: %v vs %v", n, a, b)
		}
		var ra, rb [][2]int
		r.ForEachRun(func(lo, hi int) { ra = append(ra, [2]int{lo, hi}) })
		s.ForEachRun(func(lo, hi int) { rb = append(rb, [2]int{lo, hi}) })
		if len(ra) != len(rb) {
			t.Fatalf("n=%d: ForEachRun diverges: %v vs %v", n, ra, rb)
		}
		for i := range ra {
			if ra[i] != rb[i] {
				t.Fatalf("n=%d: ForEachRun diverges at %d: %v vs %v", n, i, ra, rb)
			}
		}

		// Mask combinators under length mismatch in both directions.
		for _, mn := range []int{n / 2, n, n + 70} {
			mask := randomSet(rng, mn)
			if r.ContainsAll(mask) != s.ContainsAll(mask) {
				t.Fatalf("n=%d mask=%d: ContainsAll diverges\nvec:  %s\nmask: %s", n, mn, s, mask)
			}
			if r.Intersects(mask) != s.Intersects(mask) {
				t.Fatalf("n=%d mask=%d: Intersects diverges", n, mn)
			}
			if r.CountAnd(mask) != s.CountAnd(mask) {
				t.Fatalf("n=%d mask=%d: CountAnd: runs %d dense %d", n, mn, r.CountAnd(mask), s.CountAnd(mask))
			}
			var fa, fb []int
			r.ForEachAnd(mask, func(i int) { fa = append(fa, i) })
			s.ForEachAnd(mask, func(i int) { fb = append(fb, i) })
			if !equalInts(fa, fb) {
				t.Fatalf("n=%d mask=%d: ForEachAnd diverges: %v vs %v", n, mn, fa, fb)
			}
			// And/Or/AndNot on the dense forms must agree with Dense()
			// round-tripping (the compressed type is read-only; its
			// materialized form must be combinator-compatible).
			if !r.Dense().And(mask).Equal(s.And(mask)) ||
				!r.Dense().Or(mask).Equal(s.Or(mask)) ||
				!r.Dense().AndNot(mask).Equal(s.AndNot(mask)) {
				t.Fatalf("n=%d mask=%d: And/Or/AndNot via Dense diverge", n, mn)
			}
		}

		// Range forms, including ranges past the logical length.
		for trial := 0; trial < 8; trial++ {
			lo := rng.Intn(n + 2)
			hi := lo + rng.Intn(n+2-lo)
			if r.ContainsRange(lo, hi) != s.ContainsRange(lo, hi) {
				t.Fatalf("n=%d: ContainsRange(%d,%d) diverges on %s", n, lo, hi, s)
			}
			if r.IntersectsRange(lo, hi) != s.IntersectsRange(lo, hi) {
				t.Fatalf("n=%d: IntersectsRange(%d,%d) diverges on %s", n, lo, hi, s)
			}
			if r.CountRange(lo, hi) != s.CountRange(lo, hi) {
				t.Fatalf("n=%d: CountRange(%d,%d): runs %d dense %d on %s",
					n, lo, hi, r.CountRange(lo, hi), s.CountRange(lo, hi), s)
			}
			var fa, fb []int
			r.ForEachInRange(lo, hi, func(i int) { fa = append(fa, i) })
			s.ForEachInRange(lo, hi, func(i int) { fb = append(fb, i) })
			if !equalInts(fa, fb) {
				t.Fatalf("n=%d: ForEachInRange(%d,%d) diverges: %v vs %v", n, lo, hi, fa, fb)
			}
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestRunsCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(600)
		s := randomSet(rng, n)
		r := bitset.RunsOf(s)
		buf := r.AppendBinary([]byte("prefix")[len("prefix"):])
		// Appending trailing garbage must not confuse the consumed count.
		wire := append(append([]byte(nil), buf...), 0xde, 0xad)
		got, used, err := bitset.DecodeRuns(wire)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if used != len(buf) {
			t.Fatalf("consumed %d bytes, want %d", used, len(buf))
		}
		if got.String() != s.String() {
			t.Fatalf("round trip diverges:\n got %s\nwant %s", got, s)
		}
	}
}

func TestDecodeRunsCorrupt(t *testing.T) {
	valid := bitset.RunsOf(bitset.FromIndices(100, 1, 2, 3, 40, 41, 90)).AppendBinary(nil)
	cases := map[string][]byte{
		"empty":              {},
		"truncated mid-run":  valid[:len(valid)-1],
		"count over cap":     {10, 200, 1},        // n=10, 200 runs
		"adjacent runs":      {20, 2, 1, 2, 0, 2}, // second gap 0
		"end past length":    {4, 1, 0, 10},       // run [0,11) in n=4
		"implausible length": append([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}, 0),
	}
	for name, data := range cases {
		if _, _, err := bitset.DecodeRuns(data); !errors.Is(err, bitset.ErrCorrupt) {
			t.Errorf("%s: got %v, want ErrCorrupt", name, err)
		}
	}
}

// TestCompressHeuristic pins the density choice: short timelines and
// fragmented vectors stay dense, long run-dominated vectors compress.
func TestCompressHeuristic(t *testing.T) {
	short := bitset.New(64)
	short.SetAll()
	if bitset.Compress(short) != nil {
		t.Errorf("64-bit vector should stay dense")
	}
	long := bitset.New(1024)
	for i := 100; i < 900; i++ {
		long.Add(i)
	}
	r := bitset.Compress(long)
	if r == nil {
		t.Fatalf("single 800-bit run over 1024 bits should compress")
	}
	if r.SizeBytes() >= 8*long.NumWords() {
		t.Errorf("compressed %d bytes not smaller than dense %d", r.SizeBytes(), 8*long.NumWords())
	}
	frag := bitset.New(1024)
	for i := 0; i < 1024; i += 2 {
		frag.Add(i)
	}
	if bitset.Compress(frag) != nil {
		t.Errorf("alternating vector should stay dense")
	}
}

func TestFromWords(t *testing.T) {
	words := []uint64{0b1011, 1}
	s := bitset.FromWords(70, words)
	if s.Len() != 70 || !s.Contains(0) || s.Contains(2) || !s.Contains(64) {
		t.Fatalf("FromWords aliasing wrong: %s", s)
	}
	want := bitset.FromIndices(70, 0, 1, 3, 64)
	if !s.Equal(want) {
		t.Fatalf("FromWords = %s, want %s", s, want)
	}
}
