package core

import (
	"fmt"
	"testing"
)

// benchAccumulator builds an accumulator with nNodes nodes (chained by
// nNodes-1 edges) alive at an initial point, plus a static attribute —
// the steady state a long-running ingest reaches before the incremental
// batches the benchmarks below measure.
func benchAccumulator(nNodes int) *Accumulator {
	a := NewAccumulator(AttrSpec{Name: "team", Kind: Static})
	a.AddPoint("t0")
	for n := 0; n < nNodes; n++ {
		id := a.EnsureNode(fmt.Sprintf("n%06d", n))
		a.SetNodeTime(id)
		a.SetStatic(0, id, fmt.Sprintf("team%02d", n%17))
		if n > 0 {
			a.SetEdgeTime(a.EnsureEdge(NodeID(n-1), NodeID(n)))
		}
	}
	return a
}

// BenchmarkAccumulatorSnapshot measures the per-batch ingest-to-visible
// cost at steady state: each iteration appends one time point, applies a
// small batch, then snapshots.
//
// Two batch shapes bound the spectrum:
//
//   - retouch: the batch extends the history of entities that already
//     exist. The first below-frozen pointer replacement per side still
//     copies the tau pointer slice (copy-on-write), so this shape keeps
//     an O(nodes+edges) term — but pays it once, not per entity, and
//     skips the dictionary clones and timeline rebuild.
//   - append: the batch only introduces new entities. No below-frozen
//     pointer moves, so Snapshot is O(batch + points): at 100k nodes this
//     is where the former unconditional O(V+E) pointer copies dominated.
func BenchmarkAccumulatorSnapshot(b *testing.B) {
	const touch = 64
	for _, nNodes := range []int{1_000, 100_000} {
		b.Run(fmt.Sprintf("retouch/nodes=%d", nNodes), func(b *testing.B) {
			a := benchAccumulator(nNodes)
			a.Snapshot()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a.AddPoint(fmt.Sprintf("p%09d", i))
				for j := 0; j < touch; j++ {
					n := NodeID(1 + (i*touch+j)%(nNodes-1))
					a.SetNodeTime(n)
					a.SetEdgeTime(a.EnsureEdge(n-1, n))
				}
				if g := a.Snapshot(); g.NumNodes() != nNodes {
					b.Fatalf("snapshot lost nodes: %d", g.NumNodes())
				}
			}
		})
		b.Run(fmt.Sprintf("append/nodes=%d", nNodes), func(b *testing.B) {
			a := benchAccumulator(nNodes)
			a.Snapshot()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a.AddPoint(fmt.Sprintf("p%09d", i))
				for j := 0; j < touch; j++ {
					id := a.EnsureNode(fmt.Sprintf("x%d-%d", i, j))
					a.SetNodeTime(id)
					if j > 0 {
						a.SetEdgeTime(a.EnsureEdge(id-1, id))
					}
				}
				if g := a.Snapshot(); g.NumNodes() < nNodes {
					b.Fatalf("snapshot lost nodes: %d", g.NumNodes())
				}
			}
		})
	}
}
