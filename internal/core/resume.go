package core

import (
	"repro/internal/bitset"
	"repro/internal/dict"
)

// ResumeAccumulator returns an accumulator whose state is exactly graph
// g's, so time points recorded after g was snapshotted can be replayed on
// top of it instead of from scratch — the core of point-in-time
// reconstruction as "snapshot + partial WAL replay".
//
// The resumed accumulator follows the same sharing discipline as a live
// one: g's timestamp bitsets, static columns and time-major varying rows
// are adopted copy-on-write (the generation fence forces a clone before
// the first mutation of any shared structure), dictionaries are cloned,
// and node/edge identity is rebuilt in g's exact ID order so subsequent
// appends assign the same IDs and value codes live ingestion did.
//
// g must use the time-major varying layout or the node-major one; both
// are adopted (node-major columns are transposed once, O(V·T)).
func ResumeAccumulator(g *Graph) *Accumulator {
	a := &Accumulator{
		attrs:        append([]AttrSpec(nil), g.attrs...),
		dicts:        make([]*dict.Dict, len(g.attrs)),
		index:        &sharedIndex{nodes: make(map[string]NodeID, len(g.nodeLabels)), edges: make(map[Endpoints]EdgeID, len(g.edges))},
		labels:       append([]string(nil), g.tl.Labels()...),
		nodeLabels:   append([]string(nil), g.nodeLabels...),
		nodeTau:      append([]*bitset.Set(nil), g.nodeTau...),
		nodeTauGen:   make([]uint64, len(g.nodeTau)),
		edges:        append([]Endpoints(nil), g.edges...),
		edgeTau:      append([]*bitset.Set(nil), g.edgeTau...),
		edgeTauGen:   make([]uint64, len(g.edgeTau)),
		static:       make([][]dict.Code, len(g.attrs)),
		staticFrozen: make([]int, len(g.attrs)),
		varyingT:     make([][][]dict.Code, len(g.attrs)),
		curVarying:   make([]map[NodeID]dict.Code, len(g.attrs)),
		dictSnap:     make([]*dict.Dict, len(g.attrs)),
		dictSnapLen:  make([]int, len(g.attrs)),
		// All tau generations are 0 and the epoch starts at 1, so the first
		// touch of any adopted bitset clones it instead of mutating g's.
		gen: 1,
	}
	for i, l := range a.nodeLabels {
		a.index.nodes[l] = NodeID(i)
	}
	for i, ep := range a.edges {
		a.index.edges[ep] = EdgeID(i)
	}
	for i, d := range g.dicts {
		// The clone is the mutable working dictionary; g's own (immutable
		// from here on) doubles as the first snapshot's share.
		a.dicts[i] = d.Clone()
		a.dictSnap[i] = d
		a.dictSnapLen[i] = d.Len()
	}
	T := g.tl.Len()
	V := len(g.nodeLabels)
	for ai := range a.attrs {
		if a.attrs[ai].Kind == Static {
			col := g.static[ai]
			a.static[ai] = col[:len(col):len(col)]
			a.staticFrozen[ai] = len(col)
			continue
		}
		if g.varyingT != nil {
			rows := g.varyingT[ai]
			a.varyingT[ai] = rows[:len(rows):len(rows)]
			continue
		}
		col := g.varying[ai]
		rows := make([][]dict.Code, T)
		for t := 0; t < T; t++ {
			row := make([]dict.Code, V)
			for n := 0; n < V; n++ {
				row[n] = col[n*T+t]
			}
			rows[t] = row
		}
		a.varyingT[ai] = rows
	}
	return a
}
