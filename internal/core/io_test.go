package core

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/timeline"
)

func TestWriteReadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	g := PaperExample()
	if err := WriteDir(g, dir); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	assertGraphsEqual(t, g, got)
}

func TestRoundTripNoStaticAttrs(t *testing.T) {
	tl := timeline.MustNew("a", "b")
	b := NewBuilder(tl, AttrSpec{Name: "v", Kind: TimeVarying})
	n := b.AddNode("n1")
	b.SetNodeTime(n, 0)
	b.SetVarying(0, n, 0, "x")
	g := b.MustBuild()

	dir := t.TempDir()
	if err := WriteDir(g, dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "static.csv")); !os.IsNotExist(err) {
		t.Error("static.csv should not be written when there are no static attributes")
	}
	got, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	assertGraphsEqual(t, g, got)
}

func TestRoundTripNoAttrs(t *testing.T) {
	tl := timeline.MustNew("a")
	b := NewBuilder(tl)
	n := b.AddNode("n1")
	m := b.AddNode("n2")
	b.SetNodeTime(n, 0)
	b.SetNodeTime(m, 0)
	e := b.AddEdge(n, m)
	b.SetEdgeTime(e, 0)
	g := b.MustBuild()

	dir := t.TempDir()
	if err := WriteDir(g, dir); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	assertGraphsEqual(t, g, got)
}

func TestReadDirErrors(t *testing.T) {
	if _, err := ReadDir(t.TempDir()); err == nil {
		t.Error("ReadDir of empty dir should fail")
	}

	dir := t.TempDir()
	mustWriteFile(t, filepath.Join(dir, "schema.csv"), "name,kind\nx,bogus\n")
	if _, err := ReadDir(dir); err == nil {
		t.Error("unknown attribute kind should fail")
	}

	dir2 := t.TempDir()
	mustWriteFile(t, filepath.Join(dir2, "schema.csv"), "name,kind\n")
	mustWriteFile(t, filepath.Join(dir2, "nodes.csv"), "id,t0\nn1,2\n")
	if _, err := ReadDir(dir2); err == nil {
		t.Error("bad existence flag should fail")
	}

	dir3 := t.TempDir()
	mustWriteFile(t, filepath.Join(dir3, "schema.csv"), "name,kind\n")
	mustWriteFile(t, filepath.Join(dir3, "nodes.csv"), "id,t0\nn1,1\n")
	mustWriteFile(t, filepath.Join(dir3, "edges.csv"), "u,v,t0\nn1,ghost,1\n")
	if _, err := ReadDir(dir3); err == nil {
		t.Error("edge referencing unknown node should fail")
	}
}

func mustWriteFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func assertGraphsEqual(t *testing.T, want, got *Graph) {
	t.Helper()
	if got.NumNodes() != want.NumNodes() || got.NumEdges() != want.NumEdges() {
		t.Fatalf("sizes: got %d nodes/%d edges, want %d/%d",
			got.NumNodes(), got.NumEdges(), want.NumNodes(), want.NumEdges())
	}
	if got.Timeline().Len() != want.Timeline().Len() {
		t.Fatalf("timeline lengths differ")
	}
	for i := 0; i < want.Timeline().Len(); i++ {
		if got.Timeline().Label(timeline.Time(i)) != want.Timeline().Label(timeline.Time(i)) {
			t.Fatalf("timeline labels differ at %d", i)
		}
	}
	for n := 0; n < want.NumNodes(); n++ {
		label := want.NodeLabel(NodeID(n))
		gn, ok := got.NodeByLabel(label)
		if !ok {
			t.Fatalf("node %s missing after round trip", label)
		}
		if !got.NodeTau(gn).Equal(want.NodeTau(NodeID(n))) {
			t.Errorf("τu(%s) differs", label)
		}
		for a := 0; a < want.NumAttrs(); a++ {
			for tp := 0; tp < want.Timeline().Len(); tp++ {
				w := want.ValueString(AttrID(a), NodeID(n), timeline.Time(tp))
				g := got.ValueString(AttrID(a), gn, timeline.Time(tp))
				if w != g {
					t.Errorf("value of %s attr %d at t%d: got %q want %q", label, a, tp, g, w)
				}
			}
		}
	}
	for e := 0; e < want.NumEdges(); e++ {
		ep := want.Edge(EdgeID(e))
		u, _ := got.NodeByLabel(want.NodeLabel(ep.U))
		v, _ := got.NodeByLabel(want.NodeLabel(ep.V))
		ge, ok := got.EdgeByEndpoints(u, v)
		if !ok {
			t.Fatalf("edge (%s,%s) missing", want.NodeLabel(ep.U), want.NodeLabel(ep.V))
		}
		if !got.EdgeTau(ge).Equal(want.EdgeTau(EdgeID(e))) {
			t.Errorf("τe(%s,%s) differs", want.NodeLabel(ep.U), want.NodeLabel(ep.V))
		}
	}
}
