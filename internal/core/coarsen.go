package core

import (
	"fmt"

	"repro/internal/timeline"
)

// CoarsenSpec describes a zoom-out of the time axis: an ordered partition
// of the base time points into groups, each becoming one time point of the
// coarser graph (months → quarters, years → decades, …).
type CoarsenSpec struct {
	// Labels names the coarse time points, in order.
	Labels []string
	// Groups holds, per coarse point, the base time points it covers.
	// Groups must be non-empty, disjoint and in increasing order.
	Groups [][]timeline.Time
}

// UniformGroups builds a CoarsenSpec that merges every `width` consecutive
// base points of tl into one coarse point labeled "first..last" (or just
// the single label when a group has one point, as the final group may).
func UniformGroups(tl *timeline.Timeline, width int) (CoarsenSpec, error) {
	if width < 1 {
		return CoarsenSpec{}, fmt.Errorf("core: group width %d < 1", width)
	}
	var spec CoarsenSpec
	for start := 0; start < tl.Len(); start += width {
		end := start + width
		if end > tl.Len() {
			end = tl.Len()
		}
		var group []timeline.Time
		for t := start; t < end; t++ {
			group = append(group, timeline.Time(t))
		}
		label := tl.Label(timeline.Time(start))
		if end-start > 1 {
			label += ".." + tl.Label(timeline.Time(end-1))
		}
		spec.Labels = append(spec.Labels, label)
		spec.Groups = append(spec.Groups, group)
	}
	return spec, nil
}

// Coarsen zooms out on the time axis: it returns a new graph over the
// coarse timeline of spec in which an entity exists at a coarse point iff
// it exists at any covered base point (union semantics — the natural
// "zoom out" of §2.1's union operator, and the resolution-changing
// operation of the temporal-aggregation line of work the paper builds on).
//
// Static attributes are copied. A time-varying attribute's value at a
// coarse point is the node's most recent value within the covered base
// points — the latest state of the entity in that period.
func Coarsen(g *Graph, spec CoarsenSpec) (*Graph, error) {
	if len(spec.Labels) == 0 || len(spec.Labels) != len(spec.Groups) {
		return nil, fmt.Errorf("core: coarsen spec has %d labels and %d groups",
			len(spec.Labels), len(spec.Groups))
	}
	covered := make([]bool, g.tl.Len())
	last := timeline.Time(-1)
	for gi, group := range spec.Groups {
		if len(group) == 0 {
			return nil, fmt.Errorf("core: empty group %d", gi)
		}
		for _, t := range group {
			if int(t) < 0 || int(t) >= g.tl.Len() {
				return nil, fmt.Errorf("core: group %d references time %d out of range", gi, t)
			}
			if covered[t] {
				return nil, fmt.Errorf("core: time point %s covered twice", g.tl.Label(t))
			}
			if t <= last {
				return nil, fmt.Errorf("core: groups not in increasing order at %s", g.tl.Label(t))
			}
			covered[t] = true
			last = t
		}
	}

	ctl, err := timeline.New(spec.Labels...)
	if err != nil {
		return nil, err
	}
	b := NewBuilder(ctl, g.attrs...)

	// A spec need not cover every base point (combining projection with
	// zoom-out); entities existing only at uncovered points are dropped.
	coarseTau := func(tau interface{ Contains(int) bool }) []timeline.Time {
		var out []timeline.Time
		for gi, group := range spec.Groups {
			for _, t := range group {
				if tau.Contains(int(t)) {
					out = append(out, timeline.Time(gi))
					break
				}
			}
		}
		return out
	}

	for n := 0; n < g.NumNodes(); n++ {
		id := NodeID(n)
		coarse := coarseTau(g.nodeTau[id])
		if len(coarse) == 0 {
			continue
		}
		nn := b.AddNode(g.NodeLabel(id))
		for a := range g.attrs {
			if g.attrs[a].Kind == Static {
				if v := g.dicts[a].Value(g.static[a][id]); v != "" {
					b.SetStatic(AttrID(a), nn, v)
				}
			}
		}
		for _, ct := range coarse {
			b.SetNodeTime(nn, ct)
			group := spec.Groups[ct]
			for a := range g.attrs {
				if g.attrs[a].Kind != TimeVarying {
					continue
				}
				// Most recent value within the group.
				for i := len(group) - 1; i >= 0; i-- {
					v := g.ValueString(AttrID(a), id, group[i])
					if v != "" {
						b.SetVarying(AttrID(a), nn, ct, v)
						break
					}
				}
			}
		}
	}
	for e := 0; e < g.NumEdges(); e++ {
		id := EdgeID(e)
		coarse := coarseTau(g.edgeTau[id])
		if len(coarse) == 0 {
			continue
		}
		ep := g.Edge(id)
		u, okU := b.NodeID(g.NodeLabel(ep.U))
		v, okV := b.NodeID(g.NodeLabel(ep.V))
		if !okU || !okV {
			// Cannot happen: an edge existing at a covered point implies
			// both endpoints exist there too.
			return nil, fmt.Errorf("core: coarsen dropped an endpoint of a kept edge")
		}
		ne := b.AddEdge(u, v)
		for _, ct := range coarse {
			b.SetEdgeTime(ne, ct)
		}
	}
	return b.Build()
}
