package core

import (
	"fmt"

	"repro/internal/dict"
	"repro/internal/timeline"
)

// Window restricts g to the contiguous valid-time interval [from, to]
// (inclusive timeline indices): the VALID DURING operator. The result is
// a self-contained graph over the sub-timeline whose nodes and edges are
// exactly those existing at some point of the window, with timestamps
// shifted to the new origin and attribute values clipped to it.
//
// Determinism: entities keep g's relative ID order (filtered), and every
// dictionary is pre-interned in g's code order, so windowing the same
// graph always yields byte-identical columns — required by the time-travel
// equivalence oracle.
func Window(g *Graph, from, to int) (*Graph, error) {
	n := g.tl.Len()
	if from < 0 || to >= n || from > to {
		return nil, fmt.Errorf("core: window [%d,%d] out of range [0,%d]", from, to, n-1)
	}
	labels := g.tl.Labels()[from : to+1]
	tl, err := timeline.New(labels...)
	if err != nil {
		return nil, err
	}
	b := NewBuilder(tl, g.attrs...)
	for ai := range g.attrs {
		b.InternValues(AttrID(ai), g.dicts[ai].Values()...)
	}
	for id := range g.nodeLabels {
		tau := g.nodeTau[id]
		alive := false
		for t := from; t <= to; t++ {
			if tau.Contains(t) {
				alive = true
				break
			}
		}
		if !alive {
			continue
		}
		nid := b.AddNode(g.nodeLabels[id])
		for t := from; t <= to; t++ {
			if !tau.Contains(t) {
				continue
			}
			b.SetNodeTime(nid, timeline.Time(t-from))
			for ai := range g.attrs {
				if g.attrs[ai].Kind != TimeVarying {
					continue
				}
				if c := g.VaryingValue(AttrID(ai), NodeID(id), timeline.Time(t)); c != dict.None {
					b.SetVarying(AttrID(ai), nid, timeline.Time(t-from), g.dicts[ai].Value(c))
				}
			}
		}
		for ai := range g.attrs {
			if g.attrs[ai].Kind != Static {
				continue
			}
			if c := g.StaticValue(AttrID(ai), NodeID(id)); c != dict.None {
				b.SetStatic(AttrID(ai), nid, g.dicts[ai].Value(c))
			}
		}
	}
	for e, ep := range g.edges {
		tau := g.edgeTau[e]
		var eid EdgeID
		made := false
		for t := from; t <= to; t++ {
			if !tau.Contains(t) {
				continue
			}
			if !made {
				// Edge taus are subsets of both endpoint taus, so both
				// endpoints are alive somewhere in the window and registered.
				u, _ := b.NodeID(g.nodeLabels[ep.U])
				v, _ := b.NodeID(g.nodeLabels[ep.V])
				eid = b.AddEdge(u, v)
				made = true
			}
			b.SetEdgeTime(eid, timeline.Time(t-from))
		}
	}
	return b.Build()
}
