package core

import (
	"testing"

	"repro/internal/dict"
	"repro/internal/timeline"
)

func TestBuilderBasics(t *testing.T) {
	tl := timeline.MustNew("t0", "t1")
	b := NewBuilder(tl, AttrSpec{Name: "color", Kind: Static})
	a := b.AddNode("a")
	if again := b.AddNode("a"); again != a {
		t.Fatalf("AddNode(a) twice: %d then %d", a, again)
	}
	c := b.AddNode("c")
	b.SetNodeTime(a, 0)
	b.SetNodeTime(a, 1)
	b.SetNodeTime(c, 1)
	b.SetStatic(0, a, "red")
	b.SetStatic(0, c, "blue")
	e := b.AddEdge(a, c)
	if again := b.AddEdge(a, c); again != e {
		t.Fatalf("AddEdge twice: %d then %d", e, again)
	}
	b.SetEdgeTime(e, 1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 2 || g.NumEdges() != 1 {
		t.Fatalf("NumNodes/NumEdges = %d/%d, want 2/1", g.NumNodes(), g.NumEdges())
	}
	if g.NodeLabel(a) != "a" {
		t.Errorf("NodeLabel = %q", g.NodeLabel(a))
	}
	if n, ok := g.NodeByLabel("c"); !ok || n != c {
		t.Errorf("NodeByLabel(c) = %d,%v", n, ok)
	}
	if got := g.Dict(0).Value(g.StaticValue(0, a)); got != "red" {
		t.Errorf("static value = %q, want red", got)
	}
	if eid, ok := g.EdgeByEndpoints(a, c); !ok || eid != e {
		t.Errorf("EdgeByEndpoints = %d,%v", eid, ok)
	}
	if _, ok := g.EdgeByEndpoints(c, a); ok {
		t.Error("reverse edge should not exist (directed graph)")
	}
}

func TestBuildRejectsEdgeOutsideEndpointLifetime(t *testing.T) {
	tl := timeline.MustNew("t0", "t1")
	b := NewBuilder(tl)
	a := b.AddNode("a")
	c := b.AddNode("c")
	b.SetNodeTime(a, 0)
	b.SetNodeTime(c, 1)
	e := b.AddEdge(a, c)
	b.SetEdgeTime(e, 0) // c does not exist at t0
	if _, err := b.Build(); err == nil {
		t.Fatal("Build should reject edge outside endpoint lifetime")
	}
}

func TestBuildRejectsEmptyTimestamps(t *testing.T) {
	tl := timeline.MustNew("t0")
	b := NewBuilder(tl)
	b.AddNode("a")
	if _, err := b.Build(); err == nil {
		t.Fatal("Build should reject node with empty timestamp")
	}
}

func TestBuildRejectsBadSchema(t *testing.T) {
	tl := timeline.MustNew("t0")
	if _, err := NewBuilder(tl, AttrSpec{Name: "", Kind: Static}).Build(); err == nil {
		t.Error("empty attribute name should fail")
	}
	dup := []AttrSpec{{Name: "x", Kind: Static}, {Name: "x", Kind: TimeVarying}}
	if _, err := NewBuilder(tl, dup...).Build(); err == nil {
		t.Error("duplicate attribute names should fail")
	}
}

func TestKindMismatchFailsBuild(t *testing.T) {
	tl := timeline.MustNew("t0")
	b := NewBuilder(tl, AttrSpec{Name: "s", Kind: Static}, AttrSpec{Name: "v", Kind: TimeVarying})
	n := b.AddNode("a")
	b.SetNodeTime(n, 0)
	b.SetVarying(0, n, 0, "x") // attribute 0 is static
	if _, err := b.Build(); err == nil {
		t.Error("SetVarying on static attribute should fail Build")
	}
	b2 := NewBuilder(tl, AttrSpec{Name: "s", Kind: Static}, AttrSpec{Name: "v", Kind: TimeVarying})
	n2 := b2.AddNode("a")
	b2.SetNodeTime(n2, 0)
	b2.SetStatic(1, n2, "x") // attribute 1 is time-varying
	if _, err := b2.Build(); err == nil {
		t.Error("SetStatic on time-varying attribute should fail Build")
	}
}

func TestPaperExampleMatchesTable2(t *testing.T) {
	g := PaperExample()
	if g.NumNodes() != 5 {
		t.Fatalf("NumNodes = %d, want 5", g.NumNodes())
	}
	gender := g.MustAttr("gender")
	pubs := g.MustAttr("publications")
	if g.Attr(gender).Kind != Static || g.Attr(pubs).Kind != TimeVarying {
		t.Fatal("attribute kinds wrong")
	}

	wantTau := map[string]string{
		"u1": "110", "u2": "111", "u3": "100", "u4": "111", "u5": "001",
	}
	wantGender := map[string]string{"u1": "m", "u2": "f", "u3": "f", "u4": "f", "u5": "m"}
	wantPubs := map[string][3]string{
		"u1": {"3", "1", ""},
		"u2": {"1", "1", "1"},
		"u3": {"1", "", ""},
		"u4": {"2", "1", "1"},
		"u5": {"", "", "3"},
	}
	for label, want := range wantTau {
		n, ok := g.NodeByLabel(label)
		if !ok {
			t.Fatalf("node %s missing", label)
		}
		if got := g.NodeTau(n).String(); got != want {
			t.Errorf("τu(%s) = %s, want %s", label, got, want)
		}
		if got := g.Dict(gender).Value(g.StaticValue(gender, n)); got != wantGender[label] {
			t.Errorf("gender(%s) = %q, want %q", label, got, wantGender[label])
		}
		for tp := 0; tp < 3; tp++ {
			c := g.VaryingValue(pubs, n, timeline.Time(tp))
			got := g.Dict(pubs).Value(c)
			if got != wantPubs[label][tp] {
				t.Errorf("publications(%s, t%d) = %q, want %q", label, tp, got, wantPubs[label][tp])
			}
			if (c == dict.None) != (wantPubs[label][tp] == "") {
				t.Errorf("publications(%s, t%d) missing-ness wrong", label, tp)
			}
		}
	}

	stats := ComputeStats(g)
	wantNodes := []int{4, 3, 3}
	wantEdges := []int{3, 3, 3}
	for i := range wantNodes {
		if stats.Nodes[i] != wantNodes[i] {
			t.Errorf("nodes at t%d = %d, want %d", i, stats.Nodes[i], wantNodes[i])
		}
		if stats.Edges[i] != wantEdges[i] {
			t.Errorf("edges at t%d = %d, want %d", i, stats.Edges[i], wantEdges[i])
		}
		if stats.Nodes[i] != g.NodesAt(timeline.Time(i)) || stats.Edges[i] != g.EdgesAt(timeline.Time(i)) {
			t.Errorf("ComputeStats disagrees with NodesAt/EdgesAt at t%d", i)
		}
	}
}

func TestValueForStaticIgnoresTime(t *testing.T) {
	g := PaperExample()
	gender := g.MustAttr("gender")
	n, _ := g.NodeByLabel("u2")
	for tp := 0; tp < 3; tp++ {
		if got := g.ValueString(gender, n, timeline.Time(tp)); got != "f" {
			t.Errorf("ValueString(gender, u2, t%d) = %q, want f", tp, got)
		}
	}
}

func TestMustAttrPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	PaperExample().MustAttr("nope")
}

func TestSortedNodeLabels(t *testing.T) {
	g := PaperExample()
	labels := g.SortedNodeLabels()
	for i := 1; i < len(labels); i++ {
		if labels[i-1] >= labels[i] {
			t.Fatalf("labels not sorted: %v", labels)
		}
	}
	if len(labels) != 5 {
		t.Fatalf("len = %d, want 5", len(labels))
	}
}
