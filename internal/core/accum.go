package core

import (
	"fmt"
	"sync"

	"repro/internal/bitset"
	"repro/internal/dict"
	"repro/internal/timeline"
)

// sharedIndex is the label → id index shared between an Accumulator and
// every Graph snapshot taken from it. The accumulator keeps interning new
// labels while old snapshots serve lookups, so access is lock-guarded and
// each snapshot clips results to the node/edge count it was frozen at.
type sharedIndex struct {
	mu    sync.RWMutex
	nodes map[string]NodeID
	edges map[Endpoints]EdgeID
}

func (ix *sharedIndex) nodeByLabel(label string, bound int) (NodeID, bool) {
	ix.mu.RLock()
	n, ok := ix.nodes[label]
	ix.mu.RUnlock()
	if !ok || int(n) >= bound {
		return 0, false
	}
	return n, true
}

func (ix *sharedIndex) edgeByEndpoints(key Endpoints, bound int) (EdgeID, bool) {
	ix.mu.RLock()
	e, ok := ix.edges[key]
	ix.mu.RUnlock()
	if !ok || int(e) >= bound {
		return 0, false
	}
	return e, true
}

// Accumulator grows a temporal attributed graph one time point at a time
// and hands out immutable Graph snapshots between appends — the O(batch)
// counterpart of replaying the whole history through a Builder.
//
// The sharing discipline that makes snapshots cheap and race-free:
//
//   - Node labels, edges and attribute columns are append-only; a snapshot
//     holds length-bounded slice headers over the shared backing arrays,
//     so later appends land beyond every frozen length.
//   - Timestamp bitsets are copy-on-write: the per-entity pointer slices
//     are copied at snapshot time (O(V+E) pointer moves), and the first
//     mutation of an entity's timestamp after a snapshot clones the bitset
//     before extending it. Frozen timestamps keep their old length; the
//     bitset package's zero-padding semantics make that equivalent to
//     "absent at every newer point".
//   - Time-varying columns are time-major ([time][node]); each row is
//     written only while its point is current and is immutable afterwards.
//   - Dictionaries are cloned per snapshot (domains are small), and label
//     indexes are shared through a lock-guarded sharedIndex.
//
// An Accumulator is not safe for concurrent use; callers (stream.Series)
// serialize mutation. Snapshots are safe for unsynchronized concurrent
// reads alongside further accumulation.
type Accumulator struct {
	attrs []AttrSpec
	dicts []*dict.Dict
	index *sharedIndex

	labels []string // time point labels, append-only

	nodeLabels []string
	nodeTau    []*bitset.Set
	nodeTauGen []uint64 // generation that last cloned the node's tau

	edges      []Endpoints
	edgeTau    []*bitset.Set
	edgeTauGen []uint64

	// The tau pointer slices are shared with the newest snapshot up to the
	// frozen length: appends land beyond it and are invisible to the
	// length-clipped snapshot header, and the first pointer replacement
	// below it copies the slice (copy-on-write). This makes Snapshot itself
	// O(1) on the tau slices — the per-batch copy happens at most once per
	// side, and only for batches that re-touch pre-snapshot entities.
	nodeTauShared bool
	nodeTauFrozen int
	edgeTauShared bool
	edgeTauFrozen int

	// Per-snapshot clone caches: a dictionary (or the timeline) that did
	// not grow since the previous snapshot is shared with it instead of
	// being cloned again — published clones are never mutated, so reuse is
	// safe.
	dictSnap    []*dict.Dict
	dictSnapLen []int
	tlSnap      *timeline.Timeline

	// static[a] is the per-node value column of static attribute a (nil for
	// time-varying attributes). staticFrozen[a] is the column length visible
	// to the newest snapshot: writes below it copy the column first.
	static       [][]dict.Code
	staticFrozen []int

	// varyingT[a][t] is the dense per-node row of time-varying attribute a
	// at time t (nil for static attributes). The current point's values are
	// staged sparsely in curVarying and densified when the point ends.
	varyingT   [][][]dict.Code
	curVarying []map[NodeID]dict.Code

	gen uint64 // bumped by Snapshot; COW epoch for timestamp bitsets
}

// NewAccumulator returns an empty accumulator over the given attribute
// schema. It panics on an invalid schema (empty or duplicate names), like
// NewBuilder reports through Build.
func NewAccumulator(attrs ...AttrSpec) *Accumulator {
	a := &Accumulator{
		attrs:        append([]AttrSpec(nil), attrs...),
		dicts:        make([]*dict.Dict, len(attrs)),
		index:        &sharedIndex{nodes: make(map[string]NodeID), edges: make(map[Endpoints]EdgeID)},
		static:       make([][]dict.Code, len(attrs)),
		staticFrozen: make([]int, len(attrs)),
		varyingT:     make([][][]dict.Code, len(attrs)),
		curVarying:   make([]map[NodeID]dict.Code, len(attrs)),
		dictSnap:     make([]*dict.Dict, len(attrs)),
		dictSnapLen:  make([]int, len(attrs)),
	}
	seen := make(map[string]bool, len(attrs))
	for i, spec := range attrs {
		if spec.Name == "" {
			panic(fmt.Sprintf("core: attribute %d has empty name", i))
		}
		if seen[spec.Name] {
			panic(fmt.Sprintf("core: duplicate attribute name %q", spec.Name))
		}
		seen[spec.Name] = true
		a.dicts[i] = dict.New()
	}
	return a
}

// NumPoints returns the number of appended time points.
func (a *Accumulator) NumPoints() int { return len(a.labels) }

// NumNodes returns the number of distinct nodes seen so far.
func (a *Accumulator) NumNodes() int { return len(a.nodeLabels) }

// NodeID returns the id of the node with the given label, if seen.
func (a *Accumulator) NodeID(label string) (NodeID, bool) {
	n, ok := a.index.nodes[label]
	return n, ok
}

// StaticValue returns the currently recorded code of static attribute attr
// for node n (dict.None when unset). Callers use it to validate that a new
// batch does not contradict an earlier static value.
func (a *Accumulator) StaticValue(attr AttrID, n NodeID) dict.Code {
	return a.static[attr][n]
}

// StaticCode returns the code attr's dictionary currently assigns to value,
// or dict.None if the value has never been seen.
func (a *Accumulator) StaticCode(attr AttrID, value string) dict.Code {
	return a.dicts[attr].Code(value)
}

// ValueString decodes a code through attr's dictionary.
func (a *Accumulator) ValueString(attr AttrID, c dict.Code) string {
	return a.dicts[attr].Value(c)
}

// AddPoint starts a new time point with the given label. All subsequent
// SetNodeTime/SetEdgeTime/SetVarying calls apply to this point until the
// next AddPoint. The label must be new (callers validate).
func (a *Accumulator) AddPoint(label string) {
	a.finishPoint()
	a.labels = append(a.labels, label)
}

// finishPoint densifies the staged time-varying values of the current
// point into immutable rows.
func (a *Accumulator) finishPoint() {
	if len(a.labels) == 0 {
		return
	}
	t := len(a.labels) - 1
	for ai := range a.attrs {
		if a.attrs[ai].Kind != TimeVarying {
			continue
		}
		if len(a.varyingT[ai]) > t {
			continue // already densified (repeated Snapshot)
		}
		row := make([]dict.Code, len(a.nodeLabels))
		for i := range row {
			row[i] = dict.None
		}
		for n, c := range a.curVarying[ai] {
			row[n] = c
		}
		a.varyingT[ai] = append(a.varyingT[ai], row)
		a.curVarying[ai] = nil
	}
}

// EnsureNode returns the id of the node with the given label, registering
// it if new.
func (a *Accumulator) EnsureNode(label string) NodeID {
	if n, ok := a.index.nodes[label]; ok {
		return n
	}
	n := NodeID(len(a.nodeLabels))
	a.index.mu.Lock()
	a.index.nodes[label] = n
	a.index.mu.Unlock()
	a.nodeLabels = append(a.nodeLabels, label)
	a.nodeTau = append(a.nodeTau, bitset.New(len(a.labels)))
	a.nodeTauGen = append(a.nodeTauGen, a.gen)
	for ai := range a.attrs {
		if a.attrs[ai].Kind == Static {
			a.static[ai] = append(a.static[ai], dict.None)
		}
	}
	return n
}

// SetNodeTime marks node n as existing at the current point.
func (a *Accumulator) SetNodeTime(n NodeID) {
	s := a.touch(a.nodeTau[n], &a.nodeTauGen[n])
	if s != a.nodeTau[n] {
		// Replacing a pointer below the frozen length would mutate the
		// newest snapshot's view: copy the slice first (once per batch).
		if a.nodeTauShared && int(n) < a.nodeTauFrozen {
			a.nodeTau = append([]*bitset.Set(nil), a.nodeTau...)
			a.nodeTauShared = false
		}
		a.nodeTau[n] = s
	}
	s.Add(len(a.labels) - 1)
}

// touch prepares a timestamp bitset for mutation at the current point:
// clone when the set is frozen into a snapshot (or too short), in place
// otherwise.
func (a *Accumulator) touch(s *bitset.Set, sGen *uint64) *bitset.Set {
	if *sGen != a.gen || s.Len() < len(a.labels) {
		s = s.CloneGrow(len(a.labels))
		*sGen = a.gen
	}
	return s
}

// EnsureEdge returns the id of edge (u, v), registering it if new.
func (a *Accumulator) EnsureEdge(u, v NodeID) EdgeID {
	key := Endpoints{u, v}
	if e, ok := a.index.edges[key]; ok {
		return e
	}
	e := EdgeID(len(a.edges))
	a.index.mu.Lock()
	a.index.edges[key] = e
	a.index.mu.Unlock()
	a.edges = append(a.edges, key)
	a.edgeTau = append(a.edgeTau, bitset.New(len(a.labels)))
	a.edgeTauGen = append(a.edgeTauGen, a.gen)
	return e
}

// SetEdgeTime marks edge e as existing at the current point.
func (a *Accumulator) SetEdgeTime(e EdgeID) {
	s := a.touch(a.edgeTau[e], &a.edgeTauGen[e])
	if s != a.edgeTau[e] {
		if a.edgeTauShared && int(e) < a.edgeTauFrozen {
			a.edgeTau = append([]*bitset.Set(nil), a.edgeTau...)
			a.edgeTauShared = false
		}
		a.edgeTau[e] = s
	}
	s.Add(len(a.labels) - 1)
}

// SetStatic records the value of static attribute attr for node n. Writing
// below the newest snapshot's frozen length copies the column first
// (filling a value that earlier points left unset — the only legal case,
// since conflicting rewrites are rejected by the caller).
func (a *Accumulator) SetStatic(attr AttrID, n NodeID, value string) {
	c := a.dicts[attr].Put(value)
	col := a.static[attr]
	if col[n] == c {
		return
	}
	if int(n) < a.staticFrozen[attr] {
		col = append([]dict.Code(nil), col...)
		a.static[attr] = col
		a.staticFrozen[attr] = 0
	}
	col[n] = c
}

// SetVarying records the value of time-varying attribute attr for node n at
// the current point.
func (a *Accumulator) SetVarying(attr AttrID, n NodeID, value string) {
	if a.curVarying[attr] == nil {
		a.curVarying[attr] = make(map[NodeID]dict.Code)
	}
	a.curVarying[attr][n] = a.dicts[attr].Put(value)
}

// Snapshot freezes the accumulated state into an immutable Graph. The tau
// pointer slices, the timeline and the dictionaries are shared with the
// accumulator (and re-cloned lazily only when a later batch actually
// dirties them), so the cost is O(new entities + new points) per batch
// instead of O(nodes + edges) — independent of how much history each
// entity carries. It panics when no point has been appended (a graph
// needs a non-empty timeline).
func (a *Accumulator) Snapshot() *Graph {
	if len(a.labels) == 0 {
		panic("core: snapshot of an accumulator with no time points")
	}
	a.finishPoint()
	tl := a.tlSnap
	if tl == nil || tl.Len() != len(a.labels) {
		var err error
		if tl, err = timeline.New(a.labels...); err != nil {
			panic("core: " + err.Error()) // duplicate labels are rejected at AddPoint by callers
		}
		a.tlSnap = tl
	}
	g := &Graph{
		tl:         tl,
		attrs:      a.attrs,
		dicts:      make([]*dict.Dict, len(a.dicts)),
		nodeLabels: a.nodeLabels[:len(a.nodeLabels):len(a.nodeLabels)],
		nodeTau:    a.nodeTau[:len(a.nodeTau):len(a.nodeTau)],
		edges:      a.edges[:len(a.edges):len(a.edges)],
		edgeTau:    a.edgeTau[:len(a.edgeTau):len(a.edgeTau)],
		static:     make([][]dict.Code, len(a.attrs)),
		varyingT:   make([][][]dict.Code, len(a.attrs)),
		shared:     a.index,
	}
	a.nodeTauShared, a.nodeTauFrozen = true, len(a.nodeTau)
	a.edgeTauShared, a.edgeTauFrozen = true, len(a.edgeTau)
	for i, d := range a.dicts {
		if a.dictSnap[i] == nil || a.dictSnapLen[i] != d.Len() {
			a.dictSnap[i] = d.Clone()
			a.dictSnapLen[i] = d.Len()
		}
		g.dicts[i] = a.dictSnap[i]
	}
	for ai := range a.attrs {
		if a.attrs[ai].Kind == Static {
			col := a.static[ai]
			g.static[ai] = col[:len(col):len(col)]
			a.staticFrozen[ai] = len(col)
		} else {
			rows := a.varyingT[ai]
			g.varyingT[ai] = rows[:len(rows):len(rows)]
		}
	}
	a.gen++
	return g
}
