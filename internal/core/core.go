// Package core implements the GraphTempo temporal attributed graph model
// (Definition 2.1 of the paper).
//
// A temporal attributed graph G(V, E, τu, τe, A) is defined over a timeline
// of base time points. Each node and each edge carries a timestamp bitset
// recording the time points at which it exists (the binary-vector
// representation of §4, Table 2). Nodes carry a set of attributes, each
// either static (one value per node) or time-varying (one value per node
// per time point of existence). Attribute values are dictionary-encoded.
//
// Graphs are built through a Builder and are immutable afterwards; the
// temporal operators of package ops and the aggregations of package agg
// read them concurrently without synchronization.
package core

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/bitset"
	"repro/internal/dict"
	"repro/internal/timeline"
)

// NodeID indexes a node within one graph.
type NodeID int32

// EdgeID indexes an edge within one graph.
type EdgeID int32

// Endpoints identifies a directed edge by its endpoint node ids.
type Endpoints struct {
	U, V NodeID
}

// AttrKind distinguishes static from time-varying attributes (§2, Def. 2.1).
type AttrKind int

const (
	// Static attributes keep one value per node for the node's whole
	// lifetime (e.g. gender).
	Static AttrKind = iota
	// TimeVarying attributes have a value per node per time point of the
	// node's existence (e.g. number of publications in a year).
	TimeVarying
)

// String returns "static" or "time-varying".
func (k AttrKind) String() string {
	if k == Static {
		return "static"
	}
	return "time-varying"
}

// AttrID indexes an attribute within a graph's schema.
type AttrID int

// AttrSpec describes one node attribute.
type AttrSpec struct {
	Name string
	Kind AttrKind
}

// Graph is an immutable temporal attributed graph.
type Graph struct {
	tl    *timeline.Timeline
	attrs []AttrSpec
	dicts []*dict.Dict // one per attribute

	nodeLabels []string
	nodeIndex  map[string]NodeID
	nodeTau    []*bitset.Set // per node, length tl.Len()

	edges     []Endpoints
	edgeIndex map[Endpoints]EdgeID
	edgeTau   []*bitset.Set

	// static[a][n] is the value code of static attribute a for node n;
	// nil for time-varying attributes.
	static [][]dict.Code
	// varying[a][int(n)*tl.Len()+t] is the value code of time-varying
	// attribute a for node n at time t; nil for static attributes.
	// Builder-built graphs use this node-major layout.
	varying [][]dict.Code
	// varyingT[a][t][n] is the time-major layout used by Accumulator
	// snapshots: one immutable row per time point, frozen at the node count
	// of that point (later nodes read as dict.None). Exactly one of varying
	// and varyingT is non-nil.
	varyingT [][][]dict.Code
	// shared is non-nil for Accumulator snapshots: label lookups go through
	// the accumulator's lock-guarded index, clipped to this snapshot's
	// node/edge counts. nodeIndex/edgeIndex are nil in that case.
	shared *sharedIndex

	// idxOnce builds nodeIndex/edgeIndex lazily for FromColumns graphs
	// (mmap boot must not pay an O(V+E) map build before first lookup).
	idxOnce sync.Once

	// Run-compressed timestamp forms (columns.go): built once on first
	// NodeTauVec/EdgeTauVec call, per-vector by the bitset density
	// heuristic. nil slices mean "serve the dense sets".
	vecOnce  sync.Once
	vecBuilt atomic.Bool
	nodeVec  []bitset.Vector
	edgeVec  []bitset.Vector
	tauStats TauStats
	// noCompress pins every vector to dense form: the cross-checked
	// reference configuration (tests, planner compressed-vs-dense choice).
	noCompress bool
	// preNodeVec/preEdgeVec hold decoded run forms injected by the
	// snapshot reader (secTauRuns), so loading skips the compression scan.
	preNodeVec []bitset.Vector
	preEdgeVec []bitset.Vector
}

// Timeline returns the graph's time domain.
func (g *Graph) Timeline() *timeline.Timeline { return g.tl }

// NumNodes returns |V|.
func (g *Graph) NumNodes() int { return len(g.nodeLabels) }

// NumEdges returns |E|.
func (g *Graph) NumEdges() int { return len(g.edges) }

// NumAttrs returns the number of attributes in the schema.
func (g *Graph) NumAttrs() int { return len(g.attrs) }

// Attr returns the spec of attribute a.
func (g *Graph) Attr(a AttrID) AttrSpec { return g.attrs[a] }

// Attrs returns the full attribute schema, in declaration order.
func (g *Graph) Attrs() []AttrSpec { return append([]AttrSpec(nil), g.attrs...) }

// AttrByName returns the id of the attribute with the given name.
func (g *Graph) AttrByName(name string) (AttrID, bool) {
	for i, a := range g.attrs {
		if a.Name == name {
			return AttrID(i), true
		}
	}
	return -1, false
}

// MustAttr is AttrByName but panics when the attribute does not exist.
// Intended for examples and tests where the schema is known.
func (g *Graph) MustAttr(name string) AttrID {
	a, ok := g.AttrByName(name)
	if !ok {
		panic(fmt.Sprintf("core: no attribute named %q", name))
	}
	return a
}

// Dict returns the value dictionary of attribute a. The caller must not
// modify it.
func (g *Graph) Dict(a AttrID) *dict.Dict { return g.dicts[a] }

// NodeLabel returns the external label of node n.
func (g *Graph) NodeLabel(n NodeID) string { return g.nodeLabels[n] }

// NodeByLabel returns the node with the given external label.
func (g *Graph) NodeByLabel(label string) (NodeID, bool) {
	if g.shared != nil {
		return g.shared.nodeByLabel(label, len(g.nodeLabels))
	}
	g.idxOnce.Do(g.buildIndexes)
	n, ok := g.nodeIndex[label]
	return n, ok
}

// NodeTau returns τu(n): the bitset of time points at which node n exists.
// The caller must not modify it.
func (g *Graph) NodeTau(n NodeID) *bitset.Set { return g.nodeTau[n] }

// Edge returns the endpoints of edge e.
func (g *Graph) Edge(e EdgeID) Endpoints { return g.edges[e] }

// EdgeByEndpoints returns the edge (u, v), if present.
func (g *Graph) EdgeByEndpoints(u, v NodeID) (EdgeID, bool) {
	if g.shared != nil {
		return g.shared.edgeByEndpoints(Endpoints{u, v}, len(g.edges))
	}
	g.idxOnce.Do(g.buildIndexes)
	e, ok := g.edgeIndex[Endpoints{u, v}]
	return e, ok
}

// EdgeTau returns τe(e): the bitset of time points at which edge e exists.
// The caller must not modify it.
func (g *Graph) EdgeTau(e EdgeID) *bitset.Set { return g.edgeTau[e] }

// StaticValue returns the code of static attribute a for node n.
// It panics if a is time-varying.
func (g *Graph) StaticValue(a AttrID, n NodeID) dict.Code {
	col := g.static[a]
	if col == nil {
		panic(fmt.Sprintf("core: attribute %q is not static", g.attrs[a].Name))
	}
	return col[n]
}

// VaryingValue returns the code of time-varying attribute a for node n at
// time t (dict.None when the node has no value there).
// It panics if a is static.
func (g *Graph) VaryingValue(a AttrID, n NodeID, t timeline.Time) dict.Code {
	if g.varyingT != nil {
		rows := g.varyingT[a]
		if rows == nil {
			panic(fmt.Sprintf("core: attribute %q is not time-varying", g.attrs[a].Name))
		}
		row := rows[t]
		if int(n) >= len(row) {
			return dict.None // node joined after this point was frozen
		}
		return row[n]
	}
	col := g.varying[a]
	if col == nil {
		panic(fmt.Sprintf("core: attribute %q is not time-varying", g.attrs[a].Name))
	}
	return col[int(n)*g.tl.Len()+int(t)]
}

// Value returns the code of attribute a for node n at time t, regardless of
// the attribute's kind. For a static attribute t is ignored.
func (g *Graph) Value(a AttrID, n NodeID, t timeline.Time) dict.Code {
	if g.attrs[a].Kind == Static {
		return g.static[a][n]
	}
	return g.VaryingValue(a, n, t)
}

// ValueString is Value decoded through the attribute's dictionary.
func (g *Graph) ValueString(a AttrID, n NodeID, t timeline.Time) string {
	return g.dicts[a].Value(g.Value(a, n, t))
}

// NodesAt returns the number of nodes existing at time t.
func (g *Graph) NodesAt(t timeline.Time) int {
	c := 0
	for _, tau := range g.nodeTau {
		if tau.Contains(int(t)) {
			c++
		}
	}
	return c
}

// EdgesAt returns the number of edges existing at time t.
func (g *Graph) EdgesAt(t timeline.Time) int {
	c := 0
	for _, tau := range g.edgeTau {
		if tau.Contains(int(t)) {
			c++
		}
	}
	return c
}

// Builder assembles a Graph. Methods may be called in any order; Build
// validates the result. A Builder must not be reused after Build.
type Builder struct {
	tl    *timeline.Timeline
	attrs []AttrSpec
	dicts []*dict.Dict

	nodeLabels []string
	nodeIndex  map[string]NodeID
	nodeTau    []*bitset.Set

	edges     []Endpoints
	edgeIndex map[Endpoints]EdgeID
	edgeTau   []*bitset.Set

	static  [][]dict.Code
	varying [][]dict.Code

	err error
}

// NewBuilder returns a builder for a graph over tl with the given schema.
func NewBuilder(tl *timeline.Timeline, attrs ...AttrSpec) *Builder {
	b := &Builder{
		tl:        tl,
		attrs:     append([]AttrSpec(nil), attrs...),
		dicts:     make([]*dict.Dict, len(attrs)),
		nodeIndex: make(map[string]NodeID),
		edgeIndex: make(map[Endpoints]EdgeID),
		static:    make([][]dict.Code, len(attrs)),
		varying:   make([][]dict.Code, len(attrs)),
	}
	seen := make(map[string]bool, len(attrs))
	for i, a := range attrs {
		if a.Name == "" {
			b.fail(fmt.Errorf("core: attribute %d has empty name", i))
		}
		if seen[a.Name] {
			b.fail(fmt.Errorf("core: duplicate attribute name %q", a.Name))
		}
		seen[a.Name] = true
		b.dicts[i] = dict.New()
	}
	return b
}

func (b *Builder) fail(err error) {
	if b.err == nil {
		b.err = err
	}
}

// AddNode registers a node with the given external label if not yet present
// and returns its id.
func (b *Builder) AddNode(label string) NodeID {
	if n, ok := b.nodeIndex[label]; ok {
		return n
	}
	n := NodeID(len(b.nodeLabels))
	b.nodeIndex[label] = n
	b.nodeLabels = append(b.nodeLabels, label)
	b.nodeTau = append(b.nodeTau, bitset.New(b.tl.Len()))
	for a := range b.attrs {
		if b.attrs[a].Kind == Static {
			b.static[a] = append(b.static[a], dict.None)
		} else {
			for i := 0; i < b.tl.Len(); i++ {
				b.varying[a] = append(b.varying[a], dict.None)
			}
		}
	}
	return n
}

// NodeID returns the id already assigned to the node with the given label.
func (b *Builder) NodeID(label string) (NodeID, bool) {
	n, ok := b.nodeIndex[label]
	return n, ok
}

// SetNodeTime marks node n as existing at time t.
func (b *Builder) SetNodeTime(n NodeID, t timeline.Time) {
	b.nodeTau[n].Add(int(t))
}

// AddEdge registers the directed edge (u, v) if not yet present and returns
// its id.
func (b *Builder) AddEdge(u, v NodeID) EdgeID {
	key := Endpoints{u, v}
	if e, ok := b.edgeIndex[key]; ok {
		return e
	}
	e := EdgeID(len(b.edges))
	b.edgeIndex[key] = e
	b.edges = append(b.edges, key)
	b.edgeTau = append(b.edgeTau, bitset.New(b.tl.Len()))
	return e
}

// SetEdgeTime marks edge e as existing at time t.
func (b *Builder) SetEdgeTime(e EdgeID, t timeline.Time) {
	b.edgeTau[e].Add(int(t))
}

// InternValues pre-loads attribute a's dictionary with values in order,
// pinning their code assignment. The snapshot reader uses it so a reloaded
// graph reproduces the exact dictionary (and therefore tuple-code) layout
// of the saved one; later SetStatic/SetVarying calls re-intern idempotently.
func (b *Builder) InternValues(a AttrID, values ...string) {
	for _, v := range values {
		b.dicts[a].Put(v)
	}
}

// SetStatic assigns the value of static attribute a for node n.
func (b *Builder) SetStatic(a AttrID, n NodeID, value string) {
	if b.attrs[a].Kind != Static {
		b.fail(fmt.Errorf("core: SetStatic on time-varying attribute %q", b.attrs[a].Name))
		return
	}
	b.static[a][n] = b.dicts[a].Put(value)
}

// SetVarying assigns the value of time-varying attribute a for node n at
// time t.
func (b *Builder) SetVarying(a AttrID, n NodeID, t timeline.Time, value string) {
	if b.attrs[a].Kind != TimeVarying {
		b.fail(fmt.Errorf("core: SetVarying on static attribute %q", b.attrs[a].Name))
		return
	}
	b.varying[a][int(n)*b.tl.Len()+int(t)] = b.dicts[a].Put(value)
}

// Build validates and returns the graph. After Build the builder must not
// be used again.
//
// Validation enforces that every node and edge exists at some time point,
// and that every edge exists only at time points where both of its
// endpoints exist — in the paper's model an interaction requires both
// entities to be present.
func (b *Builder) Build() (*Graph, error) {
	if b.err != nil {
		return nil, b.err
	}
	for e, ep := range b.edges {
		tau := b.edgeTau[e]
		if tau.IsEmpty() {
			return nil, fmt.Errorf("core: edge (%s,%s) has empty timestamp",
				b.nodeLabels[ep.U], b.nodeLabels[ep.V])
		}
		both := b.nodeTau[ep.U].And(b.nodeTau[ep.V])
		if !both.ContainsAll(tau) {
			return nil, fmt.Errorf("core: edge (%s,%s) exists at a time its endpoints do not",
				b.nodeLabels[ep.U], b.nodeLabels[ep.V])
		}
	}
	for n, tau := range b.nodeTau {
		if tau.IsEmpty() {
			return nil, fmt.Errorf("core: node %s has empty timestamp", b.nodeLabels[n])
		}
	}
	return &Graph{
		tl:         b.tl,
		attrs:      b.attrs,
		dicts:      b.dicts,
		nodeLabels: b.nodeLabels,
		nodeIndex:  b.nodeIndex,
		nodeTau:    b.nodeTau,
		edges:      b.edges,
		edgeIndex:  b.edgeIndex,
		edgeTau:    b.edgeTau,
		static:     b.static,
		varying:    b.varying,
	}, nil
}

// MustBuild is Build but panics on error. Intended for fixtures and tests.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// Stats summarizes a graph per time point (Tables 3 and 4 of the paper).
type Stats struct {
	Labels []string
	Nodes  []int
	Edges  []int
}

// ComputeStats returns per-time-point node and edge counts.
func ComputeStats(g *Graph) Stats {
	n := g.tl.Len()
	s := Stats{Labels: g.tl.Labels(), Nodes: make([]int, n), Edges: make([]int, n)}
	for _, tau := range g.nodeTau {
		tau.ForEach(func(t int) { s.Nodes[t]++ })
	}
	for _, tau := range g.edgeTau {
		tau.ForEach(func(t int) { s.Edges[t]++ })
	}
	return s
}

// SortedNodeLabels returns all node labels in sorted order; useful for
// deterministic output in tools and tests.
func (g *Graph) SortedNodeLabels() []string {
	out := append([]string(nil), g.nodeLabels...)
	sort.Strings(out)
	return out
}
