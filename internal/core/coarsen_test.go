package core

import (
	"testing"

	"repro/internal/timeline"
)

func TestUniformGroups(t *testing.T) {
	tl := timeline.MustNew("2000", "2001", "2002", "2003", "2004")
	spec, err := UniformGroups(tl, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Labels) != 3 {
		t.Fatalf("groups = %d, want 3", len(spec.Labels))
	}
	if spec.Labels[0] != "2000..2001" || spec.Labels[2] != "2004" {
		t.Errorf("labels = %v", spec.Labels)
	}
	if _, err := UniformGroups(tl, 0); err == nil {
		t.Error("width 0 should fail")
	}
}

func TestCoarsenPaperExample(t *testing.T) {
	g := PaperExample()
	spec, err := UniformGroups(g.Timeline(), 2) // {t0,t1}, {t2}
	if err != nil {
		t.Fatal(err)
	}
	c, err := Coarsen(g, spec)
	if err != nil {
		t.Fatal(err)
	}
	if c.Timeline().Len() != 2 {
		t.Fatalf("coarse timeline = %d points", c.Timeline().Len())
	}
	// Existence is the union over the group: u1 (t0,t1) exists only at
	// the first coarse point; u5 (t2) only at the second; u2 at both.
	wantTau := map[string]string{"u1": "10", "u2": "11", "u3": "10", "u4": "11", "u5": "01"}
	for label, want := range wantTau {
		n, ok := c.NodeByLabel(label)
		if !ok {
			t.Fatalf("node %s missing", label)
		}
		if got := c.NodeTau(n).String(); got != want {
			t.Errorf("coarse τu(%s) = %s, want %s", label, got, want)
		}
	}
	// Static attributes copied.
	u3, _ := c.NodeByLabel("u3")
	if got := c.ValueString(c.MustAttr("gender"), u3, 0); got != "f" {
		t.Errorf("gender(u3) = %q", got)
	}
	// Time-varying value is the most recent in the group: u1 published 3
	// at t0 and 1 at t1 → coarse value 1.
	u1, _ := c.NodeByLabel("u1")
	if got := c.ValueString(c.MustAttr("publications"), u1, 0); got != "1" {
		t.Errorf("coarse publications(u1) = %q, want 1 (latest in group)", got)
	}
	// Edge (u1,u3) exists only at t0 → only at coarse point 0.
	nu1, _ := c.NodeByLabel("u1")
	nu3, _ := c.NodeByLabel("u3")
	e, ok := c.EdgeByEndpoints(nu1, nu3)
	if !ok {
		t.Fatal("edge (u1,u3) missing")
	}
	if got := c.EdgeTau(e).String(); got != "10" {
		t.Errorf("coarse τe(u1,u3) = %s", got)
	}
}

func TestCoarsenCountsMatchUnion(t *testing.T) {
	g := PaperExample()
	spec, _ := UniformGroups(g.Timeline(), 2)
	c, err := Coarsen(g, spec)
	if err != nil {
		t.Fatal(err)
	}
	// Nodes at each coarse point = nodes existing at any covered base
	// point: {t0,t1} → u1..u4 (4), {t2} → u2,u4,u5 (3).
	if got := c.NodesAt(0); got != 4 {
		t.Errorf("coarse nodes at 0 = %d, want 4", got)
	}
	if got := c.NodesAt(1); got != 3 {
		t.Errorf("coarse nodes at 1 = %d, want 3", got)
	}
	if got := c.EdgesAt(0); got != 4 {
		t.Errorf("coarse edges at 0 = %d, want 4 (union of t0,t1)", got)
	}
}

func TestCoarsenPartialCoverageDropsEntities(t *testing.T) {
	g := PaperExample()
	// Only t2 is covered: u1 and u3 vanish entirely.
	spec := CoarsenSpec{Labels: []string{"late"}, Groups: [][]timeline.Time{{2}}}
	c, err := Coarsen(g, spec)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumNodes() != 3 {
		t.Fatalf("nodes = %d, want 3 (u2, u4, u5)", c.NumNodes())
	}
	if _, ok := c.NodeByLabel("u1"); ok {
		t.Error("u1 should be dropped")
	}
	if c.NumEdges() != 3 {
		t.Errorf("edges = %d, want 3", c.NumEdges())
	}
}

func TestCoarsenSpecValidation(t *testing.T) {
	g := PaperExample()
	bad := []CoarsenSpec{
		{},
		{Labels: []string{"a"}, Groups: nil},
		{Labels: []string{"a"}, Groups: [][]timeline.Time{{}}},
		{Labels: []string{"a"}, Groups: [][]timeline.Time{{7}}},
		{Labels: []string{"a", "b"}, Groups: [][]timeline.Time{{0, 1}, {1}}}, // overlap
		{Labels: []string{"a", "b"}, Groups: [][]timeline.Time{{1}, {0}}},    // order
		{Labels: []string{"a", "a"}, Groups: [][]timeline.Time{{0}, {1}}},    // dup label
	}
	for i, spec := range bad {
		if _, err := Coarsen(g, spec); err == nil {
			t.Errorf("spec %d should fail", i)
		}
	}
}
