package core

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/dict"
	"repro/internal/timeline"
)

// The on-disk format mirrors the labeled arrays of §4 (Table 2):
//
//	schema.csv         attribute name, kind ("static" | "time-varying")
//	nodes.csv          id, one 0/1 column per time point   (array V)
//	edges.csv          u, v, one 0/1 column per time point (array E)
//	static.csv         id, one column per static attribute (array S)
//	varying_<attr>.csv id, one column per time point       (array A_i)
//
// Missing time-varying values are written as "-" (as in Table 2).

const missingMark = "-"

// WriteDir writes g to directory dir, creating it if needed.
func WriteDir(g *Graph, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if err := writeCSV(filepath.Join(dir, "schema.csv"), func(w *csv.Writer) error {
		if err := w.Write([]string{"name", "kind"}); err != nil {
			return err
		}
		for _, a := range g.attrs {
			if err := w.Write([]string{a.Name, a.Kind.String()}); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}

	labels := g.tl.Labels()
	if err := writeCSV(filepath.Join(dir, "nodes.csv"), func(w *csv.Writer) error {
		if err := w.Write(append([]string{"id"}, labels...)); err != nil {
			return err
		}
		row := make([]string, 1+len(labels))
		for n := range g.nodeLabels {
			row[0] = g.nodeLabels[n]
			for t := range labels {
				row[1+t] = bit(g.nodeTau[n].Contains(t))
			}
			if err := w.Write(row); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}

	if err := writeCSV(filepath.Join(dir, "edges.csv"), func(w *csv.Writer) error {
		if err := w.Write(append([]string{"u", "v"}, labels...)); err != nil {
			return err
		}
		row := make([]string, 2+len(labels))
		for e, ep := range g.edges {
			row[0] = g.nodeLabels[ep.U]
			row[1] = g.nodeLabels[ep.V]
			for t := range labels {
				row[2+t] = bit(g.edgeTau[e].Contains(t))
			}
			if err := w.Write(row); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}

	var staticAttrs []AttrID
	for a := range g.attrs {
		if g.attrs[a].Kind == Static {
			staticAttrs = append(staticAttrs, AttrID(a))
		}
	}
	if len(staticAttrs) > 0 {
		if err := writeCSV(filepath.Join(dir, "static.csv"), func(w *csv.Writer) error {
			hdr := []string{"id"}
			for _, a := range staticAttrs {
				hdr = append(hdr, g.attrs[a].Name)
			}
			if err := w.Write(hdr); err != nil {
				return err
			}
			row := make([]string, 1+len(staticAttrs))
			for n := range g.nodeLabels {
				row[0] = g.nodeLabels[n]
				for i, a := range staticAttrs {
					c := g.static[a][n]
					if c == dict.None {
						row[1+i] = missingMark
					} else {
						row[1+i] = g.dicts[a].Value(c)
					}
				}
				if err := w.Write(row); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			return err
		}
	}

	for a := range g.attrs {
		if g.attrs[a].Kind != TimeVarying {
			continue
		}
		name := filepath.Join(dir, "varying_"+g.attrs[a].Name+".csv")
		if err := writeCSV(name, func(w *csv.Writer) error {
			if err := w.Write(append([]string{"id"}, labels...)); err != nil {
				return err
			}
			row := make([]string, 1+len(labels))
			for n := range g.nodeLabels {
				row[0] = g.nodeLabels[n]
				for t := range labels {
					c := g.VaryingValue(AttrID(a), NodeID(n), timeline.Time(t))
					if c == dict.None {
						row[1+t] = missingMark
					} else {
						row[1+t] = g.dicts[a].Value(c)
					}
				}
				if err := w.Write(row); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			return err
		}
	}
	return nil
}

func bit(b bool) string {
	if b {
		return "1"
	}
	return "0"
}

func writeCSV(path string, fn func(*csv.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := csv.NewWriter(f)
	if err := fn(w); err != nil {
		f.Close()
		return err
	}
	w.Flush()
	if err := w.Error(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadDir loads a graph previously written with WriteDir.
func ReadDir(dir string) (*Graph, error) {
	schema, err := readAll(filepath.Join(dir, "schema.csv"))
	if err != nil {
		return nil, err
	}
	if len(schema) < 1 {
		return nil, fmt.Errorf("core: schema.csv is empty")
	}
	var attrs []AttrSpec
	for _, row := range schema[1:] {
		if len(row) != 2 {
			return nil, fmt.Errorf("core: malformed schema row %v", row)
		}
		var kind AttrKind
		switch row[1] {
		case "static":
			kind = Static
		case "time-varying":
			kind = TimeVarying
		default:
			return nil, fmt.Errorf("core: unknown attribute kind %q", row[1])
		}
		attrs = append(attrs, AttrSpec{Name: row[0], Kind: kind})
	}

	nodes, err := readAll(filepath.Join(dir, "nodes.csv"))
	if err != nil {
		return nil, err
	}
	if len(nodes) < 1 || len(nodes[0]) < 2 {
		return nil, fmt.Errorf("core: nodes.csv missing header or time columns")
	}
	tl, err := timeline.New(nodes[0][1:]...)
	if err != nil {
		return nil, err
	}
	b := NewBuilder(tl, attrs...)
	for _, row := range nodes[1:] {
		if len(row) != 1+tl.Len() {
			return nil, fmt.Errorf("core: malformed node row %v", row)
		}
		n := b.AddNode(row[0])
		for t := 0; t < tl.Len(); t++ {
			switch row[1+t] {
			case "1":
				b.SetNodeTime(n, timeline.Time(t))
			case "0":
			default:
				return nil, fmt.Errorf("core: bad existence flag %q for node %s", row[1+t], row[0])
			}
		}
	}

	edges, err := readAll(filepath.Join(dir, "edges.csv"))
	if err != nil {
		return nil, err
	}
	if len(edges) < 1 {
		return nil, fmt.Errorf("core: edges.csv is empty")
	}
	for _, row := range edges[1:] {
		if len(row) != 2+tl.Len() {
			return nil, fmt.Errorf("core: malformed edge row %v", row)
		}
		u, ok := b.nodeIndex[row[0]]
		if !ok {
			return nil, fmt.Errorf("core: edge references unknown node %q", row[0])
		}
		v, ok := b.nodeIndex[row[1]]
		if !ok {
			return nil, fmt.Errorf("core: edge references unknown node %q", row[1])
		}
		e := b.AddEdge(u, v)
		for t := 0; t < tl.Len(); t++ {
			switch row[2+t] {
			case "1":
				b.SetEdgeTime(e, timeline.Time(t))
			case "0":
			default:
				return nil, fmt.Errorf("core: bad existence flag %q for edge (%s,%s)", row[2+t], row[0], row[1])
			}
		}
	}

	hasStatic := false
	for _, a := range attrs {
		if a.Kind == Static {
			hasStatic = true
		}
	}
	if hasStatic {
		static, err := readAll(filepath.Join(dir, "static.csv"))
		if err != nil {
			return nil, err
		}
		if len(static) < 1 {
			return nil, fmt.Errorf("core: static.csv is empty")
		}
		cols := make([]AttrID, 0, len(static[0])-1)
		for _, name := range static[0][1:] {
			found := false
			for a := range attrs {
				if attrs[a].Name == name && attrs[a].Kind == Static {
					cols = append(cols, AttrID(a))
					found = true
					break
				}
			}
			if !found {
				return nil, fmt.Errorf("core: static.csv references unknown attribute %q", name)
			}
		}
		for _, row := range static[1:] {
			if len(row) != 1+len(cols) {
				return nil, fmt.Errorf("core: malformed static row %v", row)
			}
			n, ok := b.nodeIndex[row[0]]
			if !ok {
				return nil, fmt.Errorf("core: static.csv references unknown node %q", row[0])
			}
			for i, a := range cols {
				if row[1+i] != missingMark {
					b.SetStatic(a, n, row[1+i])
				}
			}
		}
	}

	for a := range attrs {
		if attrs[a].Kind != TimeVarying {
			continue
		}
		rows, err := readAll(filepath.Join(dir, "varying_"+attrs[a].Name+".csv"))
		if err != nil {
			return nil, err
		}
		if len(rows) < 1 {
			return nil, fmt.Errorf("core: varying_%s.csv is empty", attrs[a].Name)
		}
		for _, row := range rows[1:] {
			if len(row) != 1+tl.Len() {
				return nil, fmt.Errorf("core: malformed varying_%s row %v", attrs[a].Name, row)
			}
			n, ok := b.nodeIndex[row[0]]
			if !ok {
				return nil, fmt.Errorf("core: varying_%s.csv references unknown node %q", attrs[a].Name, row[0])
			}
			for t := 0; t < tl.Len(); t++ {
				if row[1+t] != missingMark {
					b.SetVarying(AttrID(a), n, timeline.Time(t), row[1+t])
				}
			}
		}
	}
	return b.Build()
}

func readAll(path string) ([][]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := csv.NewReader(f)
	r.FieldsPerRecord = -1
	var rows [][]string
	for {
		row, err := r.Read()
		if err == io.EOF {
			return rows, nil
		}
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
}
