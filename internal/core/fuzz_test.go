package core

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzReadDir throws corrupted CSV content at the loader: whatever the
// bytes, ReadDir must return an error or a valid graph — never panic.
func FuzzReadDir(f *testing.F) {
	f.Add("name,kind\ngender,static\n", "id,t0,t1\nu1,1,0\n", "u,v,t0,t1\n", "id,gender\nu1,m\n")
	f.Add("name,kind\n", "id,t0\nu1,1\nu2,1\n", "u,v,t0\nu1,u2,1\n", "")
	f.Add("name,kind\np,time-varying\n", "id,t0\nu1,1\n", "u,v,t0\n", "")
	f.Add("bogus", "id\n", "u,v\n", "id\n")
	f.Add("name,kind\nx,static\nx,static\n", "id,t0\na,2\n", "u,v,t0\na,ghost,1\n", "id,x\nghost,1\n")

	f.Fuzz(func(t *testing.T, schema, nodes, edges, static string) {
		dir := t.TempDir()
		write := func(name, content string) {
			if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		write("schema.csv", schema)
		write("nodes.csv", nodes)
		write("edges.csv", edges)
		if static != "" {
			write("static.csv", static)
		}
		// varying_*.csv files are derived from the schema, so fuzz them
		// with the nodes content — shape mismatches must also be handled.
		write("varying_p.csv", nodes)

		g, err := ReadDir(dir)
		if err != nil {
			return // rejected input is fine
		}
		// Accepted input must be a coherent graph.
		if g.NumNodes() < 0 || g.NumEdges() < 0 {
			t.Fatal("negative sizes")
		}
		for n := 0; n < g.NumNodes(); n++ {
			if g.NodeTau(NodeID(n)).IsEmpty() {
				t.Fatal("accepted node with empty timestamp")
			}
		}
		stats := ComputeStats(g)
		if len(stats.Nodes) != g.Timeline().Len() {
			t.Fatal("stats shape mismatch")
		}
	})
}
