package core

import "repro/internal/timeline"

// PaperExample returns the running example of the paper (Fig. 1, Table 2):
// a collaboration graph over T = {t0, t1, t2} with five authors, a static
// "gender" attribute and a time-varying "publications" attribute.
//
// Node existence and attribute values follow Table 2 exactly:
//
//	id  t0 t1 t2   gender   publications(t0,t1,t2)
//	u1  1  1  0    m        3, 1, -
//	u2  1  1  1    f        1, 1, 1
//	u3  1  0  0    f        1, -, -
//	u4  1  1  1    f        2, 1, 1
//	u5  0  0  1    m        -, -, 3
//
// The paper's figure images are not machine-readable, so the edge set is
// reconstructed to be consistent with every number stated in the text
// (Fig. 3d: DIST weight of (f,1) on the union of [t0,t1] is 3; Fig. 3e:
// ALL weight is 4; Fig. 4b: node (f,1) has stability 1, growth 1,
// shrinkage 1) and to exhibit stable, grown and shrunk edges between t0
// and t1:
//
//	t0: (u1,u2), (u1,u3), (u2,u4)
//	t1: (u1,u2), (u2,u4), (u1,u4)
//	t2: (u2,u4), (u4,u5), (u2,u5)
func PaperExample() *Graph {
	tl := timeline.MustNew("t0", "t1", "t2")
	b := NewBuilder(tl,
		AttrSpec{Name: "gender", Kind: Static},
		AttrSpec{Name: "publications", Kind: TimeVarying},
	)
	const (
		gender       = AttrID(0)
		publications = AttrID(1)
	)
	type nodeSpec struct {
		label  string
		gender string
		// pubs[t] is the publications value at time t ("" = not present;
		// node existence follows from non-empty values). Kept as a slice
		// so dictionary codes are assigned deterministically.
		pubs [3]string
	}
	nodes := []nodeSpec{
		{"u1", "m", [3]string{"3", "1", ""}},
		{"u2", "f", [3]string{"1", "1", "1"}},
		{"u3", "f", [3]string{"1", "", ""}},
		{"u4", "f", [3]string{"2", "1", "1"}},
		{"u5", "m", [3]string{"", "", "3"}},
	}
	ids := make(map[string]NodeID, len(nodes))
	for _, ns := range nodes {
		n := b.AddNode(ns.label)
		ids[ns.label] = n
		b.SetStatic(gender, n, ns.gender)
		for t, v := range ns.pubs {
			if v == "" {
				continue
			}
			b.SetNodeTime(n, timeline.Time(t))
			b.SetVarying(publications, n, timeline.Time(t), v)
		}
	}
	type edgeSpec struct {
		u, v  string
		times []timeline.Time
	}
	edges := []edgeSpec{
		{"u1", "u2", []timeline.Time{0, 1}},
		{"u1", "u3", []timeline.Time{0}},
		{"u2", "u4", []timeline.Time{0, 1, 2}},
		{"u1", "u4", []timeline.Time{1}},
		{"u4", "u5", []timeline.Time{2}},
		{"u2", "u5", []timeline.Time{2}},
	}
	for _, es := range edges {
		e := b.AddEdge(ids[es.u], ids[es.v])
		for _, t := range es.times {
			b.SetEdgeTime(e, t)
		}
	}
	return b.MustBuild()
}
