package core

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/dict"
	"repro/internal/timeline"
)

// Columns is the flat, already-validated-at-write-time input of
// FromColumns: the column layout the storage package persists, pointing
// (for the mmap path) straight into a file mapping.
type Columns struct {
	Timeline   *timeline.Timeline
	Attrs      []AttrSpec
	Dicts      []*dict.Dict
	NodeLabels []string
	NodeTau    []*bitset.Set
	Edges      []Endpoints
	EdgeTau    []*bitset.Set
	// Static[a][n] / Varying[a][n*T+t] use the Builder layout; exactly one
	// of the two is non-nil per attribute, matching Attrs[a].Kind.
	Static  [][]dict.Code
	Varying [][]dict.Code
	// NodeTauVec/EdgeTauVec optionally carry pre-chosen compressed forms
	// (nil entries mean dense); when set, the lazy compression scan is
	// skipped entirely.
	NodeTauVec []bitset.Vector
	EdgeTauVec []bitset.Vector
}

// FromColumns assembles a Graph directly from columnar data without the
// Builder's per-entity semantic validation. It is the O(1)-ish boot path
// of the mmap snapshot reader: only cheap structural invariants are
// checked (slice lengths line up, endpoints in range), and the label →
// id and endpoints → id indexes are built lazily on first lookup. Callers
// that need full validation (empty timestamps, edges outside endpoint
// lifetimes) must go through Builder instead.
func FromColumns(c Columns) (*Graph, error) {
	if c.Timeline == nil {
		return nil, fmt.Errorf("core: FromColumns requires a timeline")
	}
	nNodes, nEdges := len(c.NodeLabels), len(c.Edges)
	if len(c.NodeTau) != nNodes || len(c.EdgeTau) != nEdges {
		return nil, fmt.Errorf("core: tau column lengths (%d,%d) do not match entity counts (%d,%d)",
			len(c.NodeTau), len(c.EdgeTau), nNodes, nEdges)
	}
	if len(c.Dicts) != len(c.Attrs) || len(c.Static) != len(c.Attrs) || len(c.Varying) != len(c.Attrs) {
		return nil, fmt.Errorf("core: attribute column count mismatch")
	}
	T := c.Timeline.Len()
	for a, spec := range c.Attrs {
		st, va := c.Static[a], c.Varying[a]
		if spec.Kind == Static {
			if va != nil || len(st) != nNodes {
				return nil, fmt.Errorf("core: static attribute %q has wrong column shape", spec.Name)
			}
		} else if st != nil || len(va) != nNodes*T {
			return nil, fmt.Errorf("core: varying attribute %q has wrong column shape", spec.Name)
		}
	}
	for e, ep := range c.Edges {
		if int(ep.U) < 0 || int(ep.U) >= nNodes || int(ep.V) < 0 || int(ep.V) >= nNodes {
			return nil, fmt.Errorf("core: edge %d endpoints (%d,%d) out of range [0,%d)", e, ep.U, ep.V, nNodes)
		}
	}
	if (c.NodeTauVec != nil && len(c.NodeTauVec) != nNodes) ||
		(c.EdgeTauVec != nil && len(c.EdgeTauVec) != nEdges) {
		return nil, fmt.Errorf("core: pre-compressed tau vector count mismatch")
	}
	return &Graph{
		tl:         c.Timeline,
		attrs:      c.Attrs,
		dicts:      c.Dicts,
		nodeLabels: c.NodeLabels,
		nodeTau:    c.NodeTau,
		edges:      c.Edges,
		edgeTau:    c.EdgeTau,
		static:     c.Static,
		varying:    c.Varying,
		preNodeVec: c.NodeTauVec,
		preEdgeVec: c.EdgeTauVec,
	}, nil
}

// buildIndexes populates the label and endpoints maps of a FromColumns
// graph on first lookup; Builder graphs arrive with them set.
func (g *Graph) buildIndexes() {
	if g.nodeIndex != nil {
		return
	}
	ni := make(map[string]NodeID, len(g.nodeLabels))
	for n, label := range g.nodeLabels {
		ni[label] = NodeID(n)
	}
	ei := make(map[Endpoints]EdgeID, len(g.edges))
	for e, ep := range g.edges {
		ei[ep] = EdgeID(e)
	}
	g.nodeIndex, g.edgeIndex = ni, ei
}

// TauStats summarizes the outcome of the per-vector density heuristic over
// a graph's timestamps.
type TauStats struct {
	Vectors         int   // node + edge timestamps
	Compressed      int   // vectors stored run-length compressed
	Runs            int   // total runs across compressed vectors
	DenseBytes      int64 // dense word bytes across all vectors
	CompressedBytes int64 // actual bytes: run payloads + dense words kept
}

// Ratio returns CompressedBytes/DenseBytes — 1 means compression bought
// nothing, small values mean run-dominated timestamps.
func (s TauStats) Ratio() float64 {
	if s.DenseBytes == 0 {
		return 1
	}
	return float64(s.CompressedBytes) / float64(s.DenseBytes)
}

// DisableTauCompression pins every timestamp vector to its dense form. It
// is the reference-engine switch of the compressed/dense cross-check and
// must be called before the graph's first NodeTauVec/EdgeTauVec use.
func (g *Graph) DisableTauCompression() { g.noCompress = true }

// NodeTauVec returns τu(n) in the representation the density heuristic
// chose: the dense set itself, or its run-length form for run-dominated
// vectors. The first call triggers one O(V+E) selection scan (skipped for
// accumulator snapshots, which are rebuilt per ingest batch, and for
// graphs loaded with pre-compressed forms).
func (g *Graph) NodeTauVec(n NodeID) bitset.Vector {
	g.vecOnce.Do(g.buildTauVecs)
	if g.nodeVec == nil {
		return g.nodeTau[n]
	}
	return g.nodeVec[n]
}

// EdgeTauVec is NodeTauVec for edge timestamps.
func (g *Graph) EdgeTauVec(e EdgeID) bitset.Vector {
	g.vecOnce.Do(g.buildTauVecs)
	if g.edgeVec == nil {
		return g.edgeTau[e]
	}
	return g.edgeVec[e]
}

// TauStats reports the density-heuristic outcome if the selection scan has
// run (it is forced here — callers that must not pay the scan should use
// TauStatsIfBuilt).
func (g *Graph) TauStats() TauStats {
	g.vecOnce.Do(g.buildTauVecs)
	return g.tauStats
}

// TauStatsIfBuilt returns the stats only when a previous
// NodeTauVec/EdgeTauVec/TauStats call already ran the selection scan; the
// planner's feedback hook uses it to observe run ratios for free.
func (g *Graph) TauStatsIfBuilt() (TauStats, bool) {
	if !g.vecBuilt.Load() {
		return TauStats{}, false
	}
	return g.tauStats, true
}

func (g *Graph) buildTauVecs() {
	defer g.vecBuilt.Store(true)
	stats := TauStats{Vectors: len(g.nodeTau) + len(g.edgeTau)}
	words := int64((g.tl.Len() + 63) / 64 * 8)
	stats.DenseBytes = words * int64(stats.Vectors)
	stats.CompressedBytes = stats.DenseBytes
	// Accumulator snapshots are superseded on every ingest batch; paying a
	// compression scan per batch would burn the freshness budget PR 6
	// bought, so they always serve dense.
	if g.noCompress || g.shared != nil {
		g.tauStats = stats
		return
	}
	if g.preNodeVec != nil || g.preEdgeVec != nil {
		g.nodeVec = materializeVecs(g.preNodeVec, g.nodeTau, &stats)
		g.edgeVec = materializeVecs(g.preEdgeVec, g.edgeTau, &stats)
		g.preNodeVec, g.preEdgeVec = nil, nil
		g.tauStats = stats
		return
	}
	g.nodeVec = compressVecs(g.nodeTau, &stats)
	g.edgeVec = compressVecs(g.edgeTau, &stats)
	if stats.Compressed == 0 {
		g.nodeVec, g.edgeVec = nil, nil
	}
	g.tauStats = stats
}

func compressVecs(taus []*bitset.Set, stats *TauStats) []bitset.Vector {
	vecs := make([]bitset.Vector, len(taus))
	for i, tau := range taus {
		if r := bitset.Compress(tau); r != nil {
			vecs[i] = r
			stats.Compressed++
			stats.Runs += r.NumRuns()
			stats.CompressedBytes += int64(r.SizeBytes()) - int64(tau.NumWords()*8)
		} else {
			vecs[i] = tau
		}
	}
	return vecs
}

// materializeVecs adopts reader-supplied compressed forms (nil = dense).
func materializeVecs(pre []bitset.Vector, taus []*bitset.Set, stats *TauStats) []bitset.Vector {
	vecs := make([]bitset.Vector, len(taus))
	for i, tau := range taus {
		var v bitset.Vector
		if pre != nil {
			v = pre[i]
		}
		if v == nil {
			vecs[i] = tau
			continue
		}
		vecs[i] = v
		if r, ok := v.(*bitset.Runs); ok {
			stats.Compressed++
			stats.Runs += r.NumRuns()
			stats.CompressedBytes += int64(r.SizeBytes()) - int64(tau.NumWords()*8)
		}
	}
	return vecs
}
