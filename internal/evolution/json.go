package evolution

import "encoding/json"

type jsonWeights struct {
	Stability int64 `json:"stability"`
	Growth    int64 `json:"growth"`
	Shrinkage int64 `json:"shrinkage"`
}

type jsonNode struct {
	Values  []string    `json:"values"`
	Weights jsonWeights `json:"weights"`
}

type jsonEdge struct {
	From    []string    `json:"from"`
	To      []string    `json:"to"`
	Weights jsonWeights `json:"weights"`
}

type jsonAgg struct {
	Attributes []string   `json:"attributes"`
	Kind       string     `json:"kind"`
	Old        string     `json:"old"`
	New        string     `json:"new"`
	Nodes      []jsonNode `json:"nodes"`
	Edges      []jsonEdge `json:"edges"`
}

// MarshalJSON renders the aggregated evolution graph with decoded
// attribute values and (stability, growth, shrinkage) weight triples,
// sorted by label for deterministic output.
func (a *Agg) MarshalJSON() ([]byte, error) {
	out := jsonAgg{Kind: a.Kind.String(), Old: a.Old.String(), New: a.New.String()}
	for _, id := range a.Schema.Attrs() {
		out.Attributes = append(out.Attributes, a.Schema.Graph().Attr(id).Name)
	}
	toJSON := func(w Weights) jsonWeights {
		return jsonWeights{Stability: w.St, Growth: w.Gr, Shrinkage: w.Shr}
	}
	for _, tu := range a.SortedNodes() {
		out.Nodes = append(out.Nodes, jsonNode{Values: a.Schema.Decode(tu), Weights: toJSON(a.Nodes[tu])})
	}
	for _, k := range a.SortedEdges() {
		out.Edges = append(out.Edges, jsonEdge{
			From:    a.Schema.Decode(k.From),
			To:      a.Schema.Decode(k.To),
			Weights: toJSON(a.Edges[k]),
		})
	}
	return json.Marshal(out)
}
