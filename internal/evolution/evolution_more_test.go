package evolution

import (
	"strings"
	"testing"

	"repro/internal/agg"
	"repro/internal/core"
)

func TestClassStrings(t *testing.T) {
	if Stability.String() != "St" || Growth.String() != "Gr" || Shrinkage.String() != "Shr" {
		t.Error("Class strings wrong")
	}
}

func TestEdgeWeightsLookup(t *testing.T) {
	g := core.PaperExample()
	tl := g.Timeline()
	s := agg.MustSchema(g, g.MustAttr("gender"))
	a := Aggregate(g, tl.Point(0), tl.Point(1), s, agg.Distinct, nil)
	m, _ := s.Encode("m")
	f, _ := s.Encode("f")
	// m→f edges: u1→u2 stable, u1→u3 gone, u1→u4 new.
	w := a.EdgeWeights(m, f)
	if w.St != 1 || w.Gr != 1 || w.Shr != 1 {
		t.Errorf("EdgeWeights(m,f) = %+v, want 1/1/1", w)
	}
	if zero := a.EdgeWeights(f, m); zero.Total() != 0 {
		t.Errorf("EdgeWeights(f,m) = %+v, want zero", zero)
	}
}

func TestAggStringRendering(t *testing.T) {
	g := core.PaperExample()
	tl := g.Timeline()
	s := agg.MustSchema(g, g.MustAttr("gender"), g.MustAttr("publications"))
	a := Aggregate(g, tl.Point(0), tl.Point(1), s, agg.Distinct, nil)
	out := a.String()
	for _, want := range []string{
		"evolution aggregate t0 → t1 (DIST)",
		"node (f,1) St=1 Gr=1 Shr=1",
		"edge (m,3)→(f,1) St=0 Gr=0 Shr=2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("String missing %q:\n%s", want, out)
		}
	}
}

func TestAggregatePanicsOnForeignSchema(t *testing.T) {
	g1 := core.PaperExample()
	g2 := core.PaperExample()
	s := agg.MustSchema(g2, g2.MustAttr("gender"))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Aggregate(g1, g1.Timeline().Point(0), g1.Timeline().Point(1), s, agg.Distinct, nil)
}
