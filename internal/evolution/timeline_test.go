package evolution

import (
	"testing"

	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/dataset"
)

func TestTimelineOnFixture(t *testing.T) {
	g := core.PaperExample()
	s := agg.MustSchema(g, g.MustAttr("gender"))
	steps := Timeline(g, s, agg.Distinct, nil)
	if len(steps) != 2 {
		t.Fatalf("steps = %d, want 2", len(steps))
	}
	// t0→t1: nodes u1,u2,u4 stable, u3 gone; edges u1→u2 and u2→u4
	// stable, u1→u4 new, u1→u3 gone.
	s0 := steps[0]
	if s0.NodeSt != 3 || s0.NodeGr != 0 || s0.NodeShr != 1 {
		t.Errorf("step0 nodes = %d/%d/%d, want 3/0/1", s0.NodeSt, s0.NodeGr, s0.NodeShr)
	}
	if s0.EdgeSt != 2 || s0.EdgeGr != 1 || s0.EdgeShr != 1 {
		t.Errorf("step0 edges = %d/%d/%d, want 2/1/1", s0.EdgeSt, s0.EdgeGr, s0.EdgeShr)
	}
	if s0.NodeTotal != 4 || s0.EdgeTotal != 4 {
		t.Errorf("step0 totals = %d/%d, want 4/4", s0.NodeTotal, s0.EdgeTotal)
	}
	// t1→t2: u2,u4 stable, u1 gone, u5 new; edges: u2→u4 stable,
	// u1→u2 and u1→u4 gone, u4→u5 and u2→u5 new.
	s1 := steps[1]
	if s1.NodeSt != 2 || s1.NodeGr != 1 || s1.NodeShr != 1 {
		t.Errorf("step1 nodes = %d/%d/%d, want 2/1/1", s1.NodeSt, s1.NodeGr, s1.NodeShr)
	}
	if s1.EdgeSt != 1 || s1.EdgeGr != 2 || s1.EdgeShr != 2 {
		t.Errorf("step1 edges = %d/%d/%d, want 1/2/2", s1.EdgeSt, s1.EdgeGr, s1.EdgeShr)
	}
}

func TestTimelineHighChurnOnMovieLens(t *testing.T) {
	g := dataset.MovieLensScaled(1, 0.02)
	s := agg.MustSchema(g, g.MustAttr("gender"))
	steps := Timeline(g, s, agg.Distinct, nil)
	if len(steps) != 5 {
		t.Fatalf("steps = %d, want 5", len(steps))
	}
	// The paper's Fig. 13c observation: co-rating edges churn almost
	// completely month over month — stability is a small fraction of
	// every step's edge total.
	for _, st := range steps {
		if st.EdgeTotal == 0 {
			continue
		}
		if frac := float64(st.EdgeSt) / float64(st.EdgeTotal); frac > 0.3 {
			t.Errorf("step %d→%d: edge stability fraction %.2f, want ≤ 0.3", st.Old, st.New, frac)
		}
	}
}
