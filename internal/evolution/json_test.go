package evolution

import (
	"encoding/json"
	"testing"

	"repro/internal/agg"
	"repro/internal/core"
)

func TestMarshalJSON(t *testing.T) {
	g := core.PaperExample()
	tl := g.Timeline()
	s := agg.MustSchema(g, g.MustAttr("gender"), g.MustAttr("publications"))
	a := Aggregate(g, tl.Point(0), tl.Point(1), s, agg.Distinct, nil)

	data, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Old   string `json:"old"`
		New   string `json:"new"`
		Nodes []struct {
			Values  []string `json:"values"`
			Weights struct {
				Stability int64 `json:"stability"`
				Growth    int64 `json:"growth"`
				Shrinkage int64 `json:"shrinkage"`
			} `json:"weights"`
		} `json:"nodes"`
	}
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Old != "t0" || decoded.New != "t1" {
		t.Errorf("intervals = %q → %q", decoded.Old, decoded.New)
	}
	found := false
	for _, n := range decoded.Nodes {
		if n.Values[0] == "f" && n.Values[1] == "1" {
			found = true
			if n.Weights.Stability != 1 || n.Weights.Growth != 1 || n.Weights.Shrinkage != 1 {
				t.Errorf("JSON weights(f,1) = %+v, want 1/1/1", n.Weights)
			}
		}
	}
	if !found {
		t.Error("node (f,1) missing from JSON")
	}
}
