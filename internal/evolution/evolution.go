// Package evolution implements the GraphTempo evolution graph
// (Definition 2.7) and its aggregation (§2.3, Fig. 4).
//
// The evolution graph between two intervals Told and Tnew overlays three
// graphs: the intersection graph (stability), the difference Told − Tnew
// (shrinkage: what disappeared) and the difference Tnew − Told (growth:
// what is new). Aggregating it yields, for every attribute tuple, a triple
// of weights discerning the three event types.
//
// As the paper's Fig. 4b example shows (node (f,1) with stability 1,
// growth 1 and shrinkage 1), evolution aggregation classifies *attribute-
// tuple appearances per entity*, not just entities: author u4 exists in
// both t0 and t1, but its tuple (f,1) appears only at t1, so it counts as
// growth for (f,1) (and its t0 tuple (f,2) counts as shrinkage). For
// static attributes this reduces to classifying the entities themselves.
package evolution

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/ops"
	"repro/internal/timeline"
)

// Class labels an entity's evolution between Told and Tnew.
type Class int

const (
	// Stability: the entity exists in both intervals.
	Stability Class = iota
	// Growth: the entity exists only in the new interval.
	Growth
	// Shrinkage: the entity exists only in the old interval.
	Shrinkage
)

// String returns the paper's figure labels St, Gr, Shr.
func (c Class) String() string {
	switch c {
	case Stability:
		return "St"
	case Growth:
		return "Gr"
	default:
		return "Shr"
	}
}

// View is the evolution graph G> between Told and Tnew: the overlay of the
// stable, removed and added subgraphs (Definition 2.7).
type View struct {
	g        *core.Graph
	Old, New timeline.Interval
	// Stable is the intersection graph on (Told, Tnew).
	Stable *ops.View
	// Removed is the difference graph Told − Tnew.
	Removed *ops.View
	// Added is the difference graph Tnew − Told.
	Added *ops.View
}

// NewView builds the evolution graph between told and tnew.
func NewView(g *core.Graph, told, tnew timeline.Interval) *View {
	return &View{
		g:       g,
		Old:     told,
		New:     tnew,
		Stable:  ops.Intersection(g, told, tnew),
		Removed: ops.Difference(g, told, tnew),
		Added:   ops.Difference(g, tnew, told),
	}
}

// NodeClass classifies node n. The second result is false when the node is
// not part of the evolution graph (exists in neither interval).
func (ev *View) NodeClass(n core.NodeID) (Class, bool) {
	return classify(ev.g.NodeTau(n).Intersects(ev.Old.Mask()),
		ev.g.NodeTau(n).Intersects(ev.New.Mask()))
}

// EdgeClass classifies edge e. The second result is false when the edge is
// not part of the evolution graph.
func (ev *View) EdgeClass(e core.EdgeID) (Class, bool) {
	return classify(ev.g.EdgeTau(e).Intersects(ev.Old.Mask()),
		ev.g.EdgeTau(e).Intersects(ev.New.Mask()))
}

func classify(inOld, inNew bool) (Class, bool) {
	switch {
	case inOld && inNew:
		return Stability, true
	case inNew:
		return Growth, true
	case inOld:
		return Shrinkage, true
	default:
		return 0, false
	}
}

// Weights is the (stability, growth, shrinkage) weight triple of one
// aggregate node or edge (Fig. 4b).
type Weights struct {
	St, Gr, Shr int64
}

// Total returns St + Gr + Shr.
func (w Weights) Total() int64 { return w.St + w.Gr + w.Shr }

// Filter restricts which (node, time) appearances participate in an
// evolution aggregation; nil admits everything. The paper's Fig. 12 uses
// it to keep only high-activity authors (#publications > 4 in the year).
type Filter func(n core.NodeID, t timeline.Time) bool

// Agg is an aggregated evolution graph: each tuple (and tuple pair) carries
// the triple of stability/growth/shrinkage weights.
type Agg struct {
	Schema   *agg.Schema
	Kind     agg.Kind
	Old, New timeline.Interval
	Nodes    map[agg.Tuple]Weights
	Edges    map[agg.EdgeKey]Weights
}

// Aggregate computes the aggregated evolution graph between told and tnew
// under schema s.
//
// For each entity, the set of tuples it exhibits during told and during
// tnew is collected; a tuple present in both contributes to St, present
// only in tnew to Gr, and present only in told to Shr. With kind Distinct
// each (entity, tuple) contributes 1 (the paper's semantics, Fig. 4b);
// with kind All it contributes its number of per-time-point appearances in
// the interval(s) that define its class.
func Aggregate(g *core.Graph, told, tnew timeline.Interval, s *agg.Schema, kind agg.Kind, filter Filter) *Agg {
	if s.Graph() != g {
		panic("evolution: schema built on a different graph")
	}
	out := &Agg{
		Schema: s,
		Kind:   kind,
		Old:    told,
		New:    tnew,
		Nodes:  make(map[agg.Tuple]Weights),
		Edges:  make(map[agg.EdgeKey]Weights),
	}
	oldMask, newMask := told.Mask(), tnew.Mask()

	// counts[tuple] = appearances in (old, new).
	nodeCounts := make(map[agg.Tuple][2]int64)
	for n := 0; n < g.NumNodes(); n++ {
		id := core.NodeID(n)
		clear(nodeCounts)
		g.NodeTau(id).ForEach(func(t int) {
			inOld := oldMask.Contains(t)
			inNew := newMask.Contains(t)
			if !inOld && !inNew {
				return
			}
			if filter != nil && !filter(id, timeline.Time(t)) {
				return
			}
			tu, ok := s.TupleAt(id, timeline.Time(t))
			if !ok {
				return
			}
			c := nodeCounts[tu]
			if inOld {
				c[0]++
			}
			if inNew {
				c[1]++
			}
			nodeCounts[tu] = c
		})
		for tu, c := range nodeCounts {
			out.Nodes[tu] = addClass(out.Nodes[tu], c, kind)
		}
	}

	edgeCounts := make(map[agg.EdgeKey][2]int64)
	for e := 0; e < g.NumEdges(); e++ {
		id := core.EdgeID(e)
		ep := g.Edge(id)
		clear(edgeCounts)
		g.EdgeTau(id).ForEach(func(t int) {
			inOld := oldMask.Contains(t)
			inNew := newMask.Contains(t)
			if !inOld && !inNew {
				return
			}
			if filter != nil && (!filter(ep.U, timeline.Time(t)) || !filter(ep.V, timeline.Time(t))) {
				return
			}
			fu, ok1 := s.TupleAt(ep.U, timeline.Time(t))
			tu, ok2 := s.TupleAt(ep.V, timeline.Time(t))
			if !ok1 || !ok2 {
				return
			}
			key := agg.EdgeKey{From: fu, To: tu}
			c := edgeCounts[key]
			if inOld {
				c[0]++
			}
			if inNew {
				c[1]++
			}
			edgeCounts[key] = c
		})
		for key, c := range edgeCounts {
			out.Edges[key] = addClass(out.Edges[key], c, kind)
		}
	}
	return out
}

// addClass folds one entity's (old, new) appearance counts for a tuple into
// the running weights.
func addClass(w Weights, c [2]int64, kind agg.Kind) Weights {
	switch {
	case c[0] > 0 && c[1] > 0:
		if kind == agg.Distinct {
			w.St++
		} else {
			w.St += c[0] + c[1]
		}
	case c[1] > 0:
		if kind == agg.Distinct {
			w.Gr++
		} else {
			w.Gr += c[1]
		}
	case c[0] > 0:
		if kind == agg.Distinct {
			w.Shr++
		} else {
			w.Shr += c[0]
		}
	}
	return w
}

// NodeWeights returns the weight triple of the aggregate node for tu.
func (a *Agg) NodeWeights(tu agg.Tuple) Weights { return a.Nodes[tu] }

// EdgeWeights returns the weight triple of the aggregate edge (from, to).
func (a *Agg) EdgeWeights(from, to agg.Tuple) Weights {
	return a.Edges[agg.EdgeKey{From: from, To: to}]
}

// SortedNodes returns tuple keys ordered by decoded label.
func (a *Agg) SortedNodes() []agg.Tuple {
	out := make([]agg.Tuple, 0, len(a.Nodes))
	for tu := range a.Nodes {
		out = append(out, tu)
	}
	sort.Slice(out, func(i, j int) bool {
		return a.Schema.Label(out[i]) < a.Schema.Label(out[j])
	})
	return out
}

// SortedEdges returns edge keys ordered by decoded labels.
func (a *Agg) SortedEdges() []agg.EdgeKey {
	out := make([]agg.EdgeKey, 0, len(a.Edges))
	for k := range a.Edges {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		li := a.Schema.Label(out[i].From) + "→" + a.Schema.Label(out[i].To)
		lj := a.Schema.Label(out[j].From) + "→" + a.Schema.Label(out[j].To)
		return li < lj
	})
	return out
}

// String renders the aggregated evolution graph like Fig. 4b.
func (a *Agg) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "evolution aggregate %s → %s (%s)\n", a.Old, a.New, a.Kind)
	for _, tu := range a.SortedNodes() {
		w := a.Nodes[tu]
		fmt.Fprintf(&b, "  node (%s) St=%d Gr=%d Shr=%d\n", a.Schema.Label(tu), w.St, w.Gr, w.Shr)
	}
	for _, k := range a.SortedEdges() {
		w := a.Edges[k]
		fmt.Fprintf(&b, "  edge (%s)→(%s) St=%d Gr=%d Shr=%d\n",
			a.Schema.Label(k.From), a.Schema.Label(k.To), w.St, w.Gr, w.Shr)
	}
	return b.String()
}
