package evolution

import (
	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/timeline"
)

// TimelineStep summarizes the evolution between one consecutive pair of
// base time points: total node and edge weights per event class.
type TimelineStep struct {
	Old, New  timeline.Time
	NodeSt    int64
	NodeGr    int64
	NodeShr   int64
	EdgeSt    int64
	EdgeGr    int64
	EdgeShr   int64
	NodeTotal int64
	EdgeTotal int64
}

// Timeline computes the step-by-step evolution profile of the whole graph:
// for every consecutive pair (t_i, t_{i+1}), the aggregated evolution
// graph under s is reduced to class totals. It is the series behind
// dataset-dynamics plots (e.g. how much of each month's co-rating graph
// turns over) and the Fig. 12 analysis swept across the whole time axis.
func Timeline(g *core.Graph, s *agg.Schema, kind agg.Kind, filter Filter) []TimelineStep {
	n := g.Timeline().Len()
	out := make([]TimelineStep, 0, n-1)
	tl := g.Timeline()
	for i := 0; i < n-1; i++ {
		ev := Aggregate(g, tl.Point(timeline.Time(i)), tl.Point(timeline.Time(i+1)), s, kind, filter)
		step := TimelineStep{Old: timeline.Time(i), New: timeline.Time(i + 1)}
		for _, w := range ev.Nodes {
			step.NodeSt += w.St
			step.NodeGr += w.Gr
			step.NodeShr += w.Shr
		}
		for _, w := range ev.Edges {
			step.EdgeSt += w.St
			step.EdgeGr += w.Gr
			step.EdgeShr += w.Shr
		}
		step.NodeTotal = step.NodeSt + step.NodeGr + step.NodeShr
		step.EdgeTotal = step.EdgeSt + step.EdgeGr + step.EdgeShr
		out = append(out, step)
	}
	return out
}
