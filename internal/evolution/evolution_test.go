package evolution

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/gtest"
	"repro/internal/ops"
	"repro/internal/timeline"
)

func fixture(t *testing.T) (*core.Graph, *View, *agg.Schema) {
	t.Helper()
	g := core.PaperExample()
	tl := g.Timeline()
	ev := NewView(g, tl.Point(0), tl.Point(1))
	s, err := agg.ByName(g, "gender", "publications")
	if err != nil {
		t.Fatal(err)
	}
	return g, ev, s
}

func TestFig4aNodeClasses(t *testing.T) {
	g, ev, _ := fixture(t)
	want := map[string]Class{
		"u1": Stability,
		"u2": Stability,
		"u3": Shrinkage,
		"u4": Stability,
	}
	for label, wantClass := range want {
		n, _ := g.NodeByLabel(label)
		c, ok := ev.NodeClass(n)
		if !ok || c != wantClass {
			t.Errorf("class(%s) = %v,%v, want %v", label, c, ok, wantClass)
		}
	}
	// u5 exists only at t2 — not part of the evolution graph t0→t1.
	u5, _ := g.NodeByLabel("u5")
	if _, ok := ev.NodeClass(u5); ok {
		t.Error("u5 should not be in the evolution graph")
	}
}

func TestFig4aEdgeClasses(t *testing.T) {
	g, ev, _ := fixture(t)
	edge := func(u, v string) core.EdgeID {
		nu, _ := g.NodeByLabel(u)
		nv, _ := g.NodeByLabel(v)
		e, ok := g.EdgeByEndpoints(nu, nv)
		if !ok {
			t.Fatalf("edge (%s,%s) missing", u, v)
		}
		return e
	}
	cases := []struct {
		u, v string
		want Class
	}{
		{"u1", "u2", Stability},
		{"u2", "u4", Stability},
		{"u1", "u3", Shrinkage},
		{"u1", "u4", Growth},
	}
	for _, c := range cases {
		got, ok := ev.EdgeClass(edge(c.u, c.v))
		if !ok || got != c.want {
			t.Errorf("class(%s→%s) = %v,%v, want %v", c.u, c.v, got, ok, c.want)
		}
	}
}

// TestFig4bAggregation asserts the paper's exact example: in the
// aggregation of the evolution graph t0→t1 on (gender, publications), node
// (f,1) has stability 1 (u2), growth 1 (u4's new appearance) and
// shrinkage 1 (u3's removed appearance).
func TestFig4bAggregation(t *testing.T) {
	g, _, s := fixture(t)
	tl := g.Timeline()
	a := Aggregate(g, tl.Point(0), tl.Point(1), s, agg.Distinct, nil)
	tu, ok := s.Encode("f", "1")
	if !ok {
		t.Fatal("Encode(f,1) failed")
	}
	got := a.NodeWeights(tu)
	if got != (Weights{St: 1, Gr: 1, Shr: 1}) {
		t.Fatalf("weights(f,1) = %+v, want St=1 Gr=1 Shr=1 (paper Fig. 4b)", got)
	}
	// u4's (f,2) tuple at t0 disappears, u1's (m,3)→(m,1) transition.
	f2, _ := s.Encode("f", "2")
	if w := a.NodeWeights(f2); w != (Weights{Shr: 1}) {
		t.Errorf("weights(f,2) = %+v, want Shr=1", w)
	}
	m3, _ := s.Encode("m", "3")
	if w := a.NodeWeights(m3); w != (Weights{Shr: 1}) {
		t.Errorf("weights(m,3) = %+v, want Shr=1", w)
	}
	m1, _ := s.Encode("m", "1")
	if w := a.NodeWeights(m1); w != (Weights{Gr: 1}) {
		t.Errorf("weights(m,1) = %+v, want Gr=1", w)
	}
}

func TestFig4bEdgeAggregation(t *testing.T) {
	g, _, s := fixture(t)
	tl := g.Timeline()
	a := Aggregate(g, tl.Point(0), tl.Point(1), s, agg.Distinct, nil)
	key := func(f, fp, to, tp string) agg.EdgeKey {
		a1, _ := s.Encode(f, fp)
		a2, _ := s.Encode(to, tp)
		return agg.EdgeKey{From: a1, To: a2}
	}
	// (m,3)→(f,1): edges u1→u2 and u1→u3 at t0, both gone (tuple-wise) at t1.
	if w := a.Edges[key("m", "3", "f", "1")]; w != (Weights{Shr: 2}) {
		t.Errorf("((m,3)→(f,1)) = %+v, want Shr=2", w)
	}
	// (m,1)→(f,1): edges u1→u2 and u1→u4 exhibit it newly at t1.
	if w := a.Edges[key("m", "1", "f", "1")]; w != (Weights{Gr: 2}) {
		t.Errorf("((m,1)→(f,1)) = %+v, want Gr=2", w)
	}
	// (f,1)→(f,2) at t0 shrinks, (f,1)→(f,1) grows (edge u2→u4).
	if w := a.Edges[key("f", "1", "f", "2")]; w != (Weights{Shr: 1}) {
		t.Errorf("((f,1)→(f,2)) = %+v, want Shr=1", w)
	}
	if w := a.Edges[key("f", "1", "f", "1")]; w != (Weights{Gr: 1}) {
		t.Errorf("((f,1)→(f,1)) = %+v, want Gr=1", w)
	}
}

func TestStaticAggregationClassifiesEntities(t *testing.T) {
	// On a static schema (gender), evolution aggregation counts entities
	// per class: t0→t1 has u1,u2,u4 stable (m:1, f:2) and u3 shrinking.
	g, _, _ := fixture(t)
	tl := g.Timeline()
	s := agg.MustSchema(g, g.MustAttr("gender"))
	a := Aggregate(g, tl.Point(0), tl.Point(1), s, agg.Distinct, nil)
	m, _ := s.Encode("m")
	f, _ := s.Encode("f")
	if w := a.NodeWeights(m); w != (Weights{St: 1}) {
		t.Errorf("weights(m) = %+v, want St=1", w)
	}
	if w := a.NodeWeights(f); w != (Weights{St: 2, Shr: 1}) {
		t.Errorf("weights(f) = %+v, want St=2 Shr=1", w)
	}
}

func TestFilterRestrictsAppearances(t *testing.T) {
	// Keep only appearances with publications > 2 (u1@t0 with 3, u5@t2
	// with 3): on gender, t0→t1 then has only a shrinking (m).
	g, _, _ := fixture(t)
	tl := g.Timeline()
	s := agg.MustSchema(g, g.MustAttr("gender"))
	pubs := g.MustAttr("publications")
	highActivity := func(n core.NodeID, t timeline.Time) bool {
		v := g.ValueString(pubs, n, t)
		return v == "3" // domain is {1,2,3}; >2 means 3
	}
	a := Aggregate(g, tl.Point(0), tl.Point(1), s, agg.Distinct, highActivity)
	m, _ := s.Encode("m")
	f, _ := s.Encode("f")
	if w := a.NodeWeights(m); w != (Weights{Shr: 1}) {
		t.Errorf("weights(m) = %+v, want Shr=1", w)
	}
	if w := a.NodeWeights(f); w.Total() != 0 {
		t.Errorf("weights(f) = %+v, want empty", w)
	}
	// Edges: at t0 u1 (pubs 3) → u2 (pubs 1): u2 fails the filter, so no
	// edge appearance survives.
	if len(a.Edges) != 0 {
		t.Errorf("edges = %v, want none", a.Edges)
	}
}

func TestAllKindCountsAppearances(t *testing.T) {
	// Between [t0,t1] and [t2]: u2 exhibits (f,1) at t0,t1 (old) and t2
	// (new) → ALL stability weight 3 for its contribution; u4 exhibits
	// (f,2)@t0 (Shr 1) and (f,1)@t1,t2 (St 2).
	g, _, s := fixture(t)
	tl := g.Timeline()
	a := Aggregate(g, tl.Range(0, 1), tl.Point(2), s, agg.All, nil)
	f1, _ := s.Encode("f", "1")
	w := a.NodeWeights(f1)
	// u2 contributes St 3 (t0,t1 + t2), u4 contributes St 2 (t1 + t2),
	// u3 contributes Shr 1 (t0).
	if w.St != 5 || w.Shr != 1 || w.Gr != 0 {
		t.Errorf("ALL weights(f,1) = %+v, want St=5 Shr=1 Gr=0", w)
	}
}

func TestViewPartsConsistentWithOperators(t *testing.T) {
	g, ev, _ := fixture(t)
	tl := g.Timeline()
	if ev.Stable.NumNodes() != ops.Intersection(g, tl.Point(0), tl.Point(1)).NumNodes() {
		t.Error("Stable part disagrees with Intersection")
	}
	if ev.Removed.NumEdges() != ops.Difference(g, tl.Point(0), tl.Point(1)).NumEdges() {
		t.Error("Removed part disagrees with Difference(old, new)")
	}
	if ev.Added.NumEdges() != ops.Difference(g, tl.Point(1), tl.Point(0)).NumEdges() {
		t.Error("Added part disagrees with Difference(new, old)")
	}
}

func TestQuickEvolutionPartition(t *testing.T) {
	// Definition 2.7: V> = V∩ ∪ V− ∪ V−' and every node of the union view
	// on (Told, Tnew) has exactly one class.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := gtest.RandomGraph(r, gtest.DefaultParams())
		tl := g.Timeline()
		told := gtest.RandomInterval(r, tl)
		tnew := gtest.RandomInterval(r, tl)
		ev := NewView(g, told, tnew)
		u := ops.Union(g, told, tnew)
		ok := true
		u.ForEachNode(func(n core.NodeID) {
			if _, in := ev.NodeClass(n); !in {
				ok = false
			}
		})
		u.ForEachEdge(func(e core.EdgeID) {
			c, in := ev.EdgeClass(e)
			if !in {
				ok = false
				return
			}
			// The class must match membership in the three parts.
			switch c {
			case Stability:
				if !ev.Stable.ContainsEdge(e) {
					ok = false
				}
			case Shrinkage:
				if !ev.Removed.ContainsEdge(e) {
					ok = false
				}
			case Growth:
				if !ev.Added.ContainsEdge(e) {
					ok = false
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickWeightsConsistentWithPlainAggregation(t *testing.T) {
	// For static schemas, the evolution triple must tie out against plain
	// aggregations of the three operator views: St(v) = DIST weight in the
	// intersection view; Gr + Shr relate to the difference views' node
	// sets restricted to actually-disappearing/appearing entities.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := gtest.RandomGraph(r, gtest.DefaultParams())
		var static []core.AttrID
		for a := 0; a < g.NumAttrs(); a++ {
			if g.Attr(core.AttrID(a)).Kind == core.Static {
				static = append(static, core.AttrID(a))
			}
		}
		if len(static) == 0 {
			return true
		}
		s := agg.MustSchema(g, static...)
		tl := g.Timeline()
		told := gtest.RandomInterval(r, tl)
		tnew := gtest.RandomInterval(r, tl)
		ev := Aggregate(g, told, tnew, s, agg.Distinct, nil)
		stable := agg.Aggregate(ops.Intersection(g, told, tnew), s, agg.Distinct)
		for tu, w := range ev.Nodes {
			if w.St != stable.Nodes[tu] {
				return false
			}
		}
		for k, w := range ev.Edges {
			if w.St != stable.Edges[k] {
				return false
			}
		}
		// Edge growth = DIST weight in Difference(new, old) view.
		added := agg.Aggregate(ops.Difference(g, tnew, told), s, agg.Distinct)
		removed := agg.Aggregate(ops.Difference(g, told, tnew), s, agg.Distinct)
		for k, w := range ev.Edges {
			if w.Gr != added.Edges[k] || w.Shr != removed.Edges[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDistinctTripleAtMostAll(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := gtest.RandomGraph(r, gtest.DefaultParams())
		if g.NumAttrs() == 0 {
			return true
		}
		attrs := make([]core.AttrID, g.NumAttrs())
		for i := range attrs {
			attrs[i] = core.AttrID(i)
		}
		s := agg.MustSchema(g, attrs...)
		tl := g.Timeline()
		told := gtest.RandomInterval(r, tl)
		tnew := gtest.RandomInterval(r, tl)
		dist := Aggregate(g, told, tnew, s, agg.Distinct, nil)
		all := Aggregate(g, told, tnew, s, agg.All, nil)
		for tu, w := range dist.Nodes {
			aw := all.Nodes[tu]
			if aw.St < w.St || aw.Gr < w.Gr || aw.Shr < w.Shr {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
