package evolution

import (
	"testing"

	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/timeline"
)

// Degenerate evolution windows must classify cleanly, never panic: every
// entity alive only on one side is pure growth/shrinkage, an empty window
// on both sides yields an empty evolution graph, and a filter that
// excludes every appearance produces zero weights.

func TestEvolutionEdgeCases(t *testing.T) {
	g := core.PaperExample()
	tl := g.Timeline()
	schema, err := agg.ByName(g, "gender")
	if err != nil {
		t.Fatal(err)
	}

	sum := func(a *Agg) (w Weights) {
		for _, tu := range a.SortedNodes() {
			nw := a.NodeWeights(tu)
			w.St += nw.St
			w.Gr += nw.Gr
			w.Shr += nw.Shr
		}
		return w
	}

	cases := []struct {
		name     string
		old, new timeline.Interval
		filter   Filter
		// wantOnly constrains which weight components may be non-zero.
		wantSt, wantGr, wantShr bool
		wantEmpty               bool
	}{
		{name: "empty old: everything is growth",
			old: tl.Empty(), new: tl.Point(1), wantGr: true},
		{name: "empty new: everything is shrinkage",
			old: tl.Point(1), new: tl.Empty(), wantShr: true},
		{name: "empty both: empty evolution graph",
			old: tl.Empty(), new: tl.Empty(), wantEmpty: true},
		{name: "identical single point: pure stability",
			old: tl.Point(0), new: tl.Point(0), wantSt: true},
		{name: "disjoint multi-point windows classify all three",
			old: tl.Range(0, 1), new: tl.Point(2),
			wantSt: true, wantGr: true, wantShr: true},
		{name: "filter excludes all: zero weights",
			old: tl.Point(0), new: tl.Point(1),
			filter:    func(core.NodeID, timeline.Time) bool { return false },
			wantEmpty: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := Aggregate(g, tc.old, tc.new, schema, agg.Distinct, tc.filter)
			w := sum(a)
			if tc.wantEmpty {
				if w != (Weights{}) {
					t.Fatalf("weights = %+v, want all zero", w)
				}
				return
			}
			if w.Total() == 0 {
				t.Fatal("expected a non-empty evolution aggregate")
			}
			if (w.St > 0) != tc.wantSt || (w.Gr > 0) != tc.wantGr || (w.Shr > 0) != tc.wantShr {
				t.Fatalf("weights = %+v, want st>0=%v gr>0=%v shr>0=%v",
					w, tc.wantSt, tc.wantGr, tc.wantShr)
			}
		})
	}
}

// TestEvolutionViewEmptyWindows: classification against empty windows is
// total — nothing is "in" an empty interval, so NodeClass/EdgeClass report
// not-part-of-graph for both-empty and a one-sided class otherwise.
func TestEvolutionViewEmptyWindows(t *testing.T) {
	g := core.PaperExample()
	tl := g.Timeline()
	u1, _ := g.NodeByLabel("u1")

	ev := NewView(g, tl.Empty(), tl.Empty())
	if _, ok := ev.NodeClass(u1); ok {
		t.Error("both-empty view classified a node")
	}

	ev = NewView(g, tl.Empty(), tl.Point(0))
	if c, ok := ev.NodeClass(u1); !ok || c != Growth {
		t.Errorf("empty-old class = %v,%v, want Growth", c, ok)
	}
	ev = NewView(g, tl.Point(0), tl.Empty())
	if c, ok := ev.NodeClass(u1); !ok || c != Shrinkage {
		t.Errorf("empty-new class = %v,%v, want Shrinkage", c, ok)
	}
}

// TestEvolutionSinglePointTimeline: a one-point graph can only express
// stability (both windows the same point); the timeline sweep has no
// consecutive pair, so Timeline() is empty.
func TestEvolutionSinglePointTimeline(t *testing.T) {
	g := singlePointGraph(t)
	tl := g.Timeline()
	schema, err := agg.ByName(g, "gender")
	if err != nil {
		t.Fatal(err)
	}
	a := Aggregate(g, tl.Point(0), tl.Point(0), schema, agg.Distinct, nil)
	for _, tu := range a.SortedNodes() {
		w := a.NodeWeights(tu)
		if w.Gr != 0 || w.Shr != 0 || w.St == 0 {
			t.Fatalf("single-point weights for %v = %+v, want pure stability", tu, w)
		}
	}
	if steps := Timeline(g, schema, agg.Distinct, nil); len(steps) != 0 {
		t.Fatalf("timeline sweep over one point = %d steps, want 0", len(steps))
	}
}

// singlePointGraph is a minimal one-point, two-node graph.
func singlePointGraph(t *testing.T) *core.Graph {
	t.Helper()
	b := core.NewBuilder(
		timeline.MustNew("t0"),
		core.AttrSpec{Name: "gender", Kind: core.Static},
	)
	a := b.AddNode("a")
	n2 := b.AddNode("b")
	b.SetNodeTime(a, 0)
	b.SetNodeTime(n2, 0)
	b.SetStatic(0, a, "m")
	b.SetStatic(0, n2, "f")
	b.SetEdgeTime(b.AddEdge(a, n2), 0)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}
