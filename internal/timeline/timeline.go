// Package timeline models the time domain of a temporal attributed graph.
//
// GraphTempo defines a temporal graph over a finite, ordered set of base
// time points (the shortest intervals T_i of the paper, e.g. years for DBLP
// or months for MovieLens). An Interval is a set of those time points; the
// temporal operators of the paper combine intervals with union and
// intersection, and the exploration strategies of §3 walk the union and
// intersection semi-lattices by extending an interval with its neighbouring
// base point.
package timeline

import (
	"fmt"
	"strings"

	"repro/internal/bitset"
)

// Time identifies a base time point by its index on the timeline.
type Time int

// Timeline is an ordered sequence of labeled base time points.
type Timeline struct {
	labels []string
	index  map[string]Time
}

// New returns a timeline with the given point labels, in order.
// Labels must be unique and non-empty.
func New(labels ...string) (*Timeline, error) {
	if len(labels) == 0 {
		return nil, fmt.Errorf("timeline: no time points")
	}
	tl := &Timeline{labels: append([]string(nil), labels...), index: make(map[string]Time, len(labels))}
	for i, l := range labels {
		if l == "" {
			return nil, fmt.Errorf("timeline: empty label at position %d", i)
		}
		if _, dup := tl.index[l]; dup {
			return nil, fmt.Errorf("timeline: duplicate label %q", l)
		}
		tl.index[l] = Time(i)
	}
	return tl, nil
}

// MustNew is like New but panics on error. Intended for tests and fixtures.
func MustNew(labels ...string) *Timeline {
	tl, err := New(labels...)
	if err != nil {
		panic(err)
	}
	return tl
}

// Len returns the number of base time points.
func (tl *Timeline) Len() int { return len(tl.labels) }

// Label returns the label of time point t. It panics if t is out of range.
func (tl *Timeline) Label(t Time) string { return tl.labels[t] }

// Labels returns a copy of all point labels in order.
func (tl *Timeline) Labels() []string { return append([]string(nil), tl.labels...) }

// TimeOf returns the time point with the given label.
func (tl *Timeline) TimeOf(label string) (Time, bool) {
	t, ok := tl.index[label]
	return t, ok
}

// Interval is a set of time points on a timeline. Although GraphTempo's
// exploration only ever produces contiguous intervals, the model (and the
// union/intersection/difference operators) is defined on arbitrary sets of
// time points, so Interval supports both.
type Interval struct {
	tl  *Timeline
	set *bitset.Set
}

// Point returns the interval containing the single time point t.
func (tl *Timeline) Point(t Time) Interval {
	tl.checkTime(t)
	return Interval{tl, bitset.FromIndices(tl.Len(), int(t))}
}

// Range returns the contiguous interval [from, to], inclusive on both ends.
// It panics if from > to or either end is out of range.
func (tl *Timeline) Range(from, to Time) Interval {
	tl.checkTime(from)
	tl.checkTime(to)
	if from > to {
		panic(fmt.Sprintf("timeline: Range(%d, %d) with from > to", from, to))
	}
	s := bitset.New(tl.Len())
	for t := from; t <= to; t++ {
		s.Add(int(t))
	}
	return Interval{tl, s}
}

// Empty returns the empty interval on tl.
func (tl *Timeline) Empty() Interval {
	return Interval{tl, bitset.New(tl.Len())}
}

// All returns the interval covering every time point of tl.
func (tl *Timeline) All() Interval {
	s := bitset.New(tl.Len())
	s.SetAll()
	return Interval{tl, s}
}

// Of returns the interval containing exactly the given time points.
func (tl *Timeline) Of(ts ...Time) Interval {
	s := bitset.New(tl.Len())
	for _, t := range ts {
		tl.checkTime(t)
		s.Add(int(t))
	}
	return Interval{tl, s}
}

func (tl *Timeline) checkTime(t Time) {
	if int(t) < 0 || int(t) >= tl.Len() {
		panic(fmt.Sprintf("timeline: time %d out of range [0,%d)", t, tl.Len()))
	}
}

// Timeline returns the timeline the interval is defined on.
func (iv Interval) Timeline() *Timeline { return iv.tl }

// Mask returns the interval's underlying time-point bitset. The caller must
// not modify it.
func (iv Interval) Mask() *bitset.Set { return iv.set }

// IsEmpty reports whether the interval contains no time point.
func (iv Interval) IsEmpty() bool { return iv.set == nil || iv.set.IsEmpty() }

// Len returns the number of time points in the interval.
func (iv Interval) Len() int {
	if iv.set == nil {
		return 0
	}
	return iv.set.Count()
}

// Contains reports whether the interval contains time point t.
func (iv Interval) Contains(t Time) bool {
	return iv.set != nil && iv.set.Contains(int(t))
}

// Times returns the time points of the interval in increasing order.
func (iv Interval) Times() []Time {
	if iv.set == nil {
		return nil
	}
	idx := iv.set.Indices()
	ts := make([]Time, len(idx))
	for i, x := range idx {
		ts[i] = Time(x)
	}
	return ts
}

// Min returns the earliest time point, or -1 if the interval is empty.
func (iv Interval) Min() Time {
	if iv.set == nil {
		return -1
	}
	return Time(iv.set.Next(0))
}

// Max returns the latest time point, or -1 if the interval is empty.
func (iv Interval) Max() Time {
	if iv.set == nil {
		return -1
	}
	m := Time(-1)
	for i := iv.set.Next(0); i >= 0; i = iv.set.Next(i + 1) {
		m = Time(i)
	}
	return m
}

// IsContiguous reports whether the interval is a contiguous run of points.
func (iv Interval) IsContiguous() bool {
	if iv.IsEmpty() {
		return true
	}
	return int(iv.Max()-iv.Min())+1 == iv.Len()
}

func (iv Interval) sameTimeline(other Interval, op string) {
	if iv.tl != other.tl {
		panic("timeline: " + op + " of intervals on different timelines")
	}
}

// Union returns the set union of the two intervals.
func (iv Interval) Union(other Interval) Interval {
	iv.sameTimeline(other, "Union")
	return Interval{iv.tl, iv.set.Or(other.set)}
}

// Intersect returns the set intersection of the two intervals.
func (iv Interval) Intersect(other Interval) Interval {
	iv.sameTimeline(other, "Intersect")
	return Interval{iv.tl, iv.set.And(other.set)}
}

// Minus returns the set difference iv − other.
func (iv Interval) Minus(other Interval) Interval {
	iv.sameTimeline(other, "Minus")
	return Interval{iv.tl, iv.set.AndNot(other.set)}
}

// Intersects reports whether the intervals share a time point.
func (iv Interval) Intersects(other Interval) bool {
	iv.sameTimeline(other, "Intersects")
	return iv.set.Intersects(other.set)
}

// SubsetOf reports whether every point of iv is also in other.
func (iv Interval) SubsetOf(other Interval) bool {
	iv.sameTimeline(other, "SubsetOf")
	return other.set.ContainsAll(iv.set)
}

// Equal reports whether the intervals contain the same time points.
func (iv Interval) Equal(other Interval) bool {
	return iv.tl == other.tl && iv.set.Equal(other.set)
}

// ExtendRight returns the interval extended by the base point immediately
// after its maximum, and true; or iv unchanged and false when already at the
// right edge of the timeline. This is the "right child in the semi-lattice"
// step of U-Explore/I-Explore (the semantics — union vs. intersection — are
// determined by how the caller combines the extended interval, not by the
// extension itself).
func (iv Interval) ExtendRight() (Interval, bool) {
	m := iv.Max()
	if m < 0 || int(m)+1 >= iv.tl.Len() {
		return iv, false
	}
	s := iv.set.Clone()
	s.Add(int(m) + 1)
	return Interval{iv.tl, s}, true
}

// ExtendLeft returns the interval extended by the base point immediately
// before its minimum, and true; or iv unchanged and false when already at
// the left edge of the timeline.
func (iv Interval) ExtendLeft() (Interval, bool) {
	m := iv.Min()
	if m < 0 || m == 0 {
		return iv, false
	}
	s := iv.set.Clone()
	s.Add(int(m) - 1)
	return Interval{iv.tl, s}, true
}

// String renders the interval with point labels: a single label for a
// point, "[a,b]" for a contiguous run, and "{a,b,c}" for a general set.
func (iv Interval) String() string {
	if iv.IsEmpty() {
		return "∅"
	}
	ts := iv.Times()
	if len(ts) == 1 {
		return iv.tl.Label(ts[0])
	}
	if iv.IsContiguous() {
		return "[" + iv.tl.Label(ts[0]) + "," + iv.tl.Label(ts[len(ts)-1]) + "]"
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, t := range ts {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(iv.tl.Label(t))
	}
	b.WriteByte('}')
	return b.String()
}
