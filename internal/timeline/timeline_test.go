package timeline

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func tl3(t *testing.T) *Timeline {
	t.Helper()
	return MustNew("t0", "t1", "t2")
}

func TestNewErrors(t *testing.T) {
	if _, err := New(); err == nil {
		t.Error("New() with no labels should fail")
	}
	if _, err := New("a", ""); err == nil {
		t.Error("New with empty label should fail")
	}
	if _, err := New("a", "a"); err == nil {
		t.Error("New with duplicate labels should fail")
	}
}

func TestLookup(t *testing.T) {
	tl := tl3(t)
	if tl.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tl.Len())
	}
	if tl.Label(1) != "t1" {
		t.Errorf("Label(1) = %q, want t1", tl.Label(1))
	}
	tp, ok := tl.TimeOf("t2")
	if !ok || tp != 2 {
		t.Errorf("TimeOf(t2) = %d,%v, want 2,true", tp, ok)
	}
	if _, ok := tl.TimeOf("nope"); ok {
		t.Error("TimeOf(nope) should not be found")
	}
}

func TestPointRangeAll(t *testing.T) {
	tl := tl3(t)
	p := tl.Point(1)
	if p.Len() != 1 || !p.Contains(1) || p.Contains(0) {
		t.Errorf("Point(1) wrong: %v", p)
	}
	r := tl.Range(0, 1)
	if r.Len() != 2 || !r.Contains(0) || !r.Contains(1) || r.Contains(2) {
		t.Errorf("Range(0,1) wrong: %v", r)
	}
	if tl.All().Len() != 3 {
		t.Errorf("All wrong: %v", tl.All())
	}
	if !tl.Empty().IsEmpty() {
		t.Error("Empty not empty")
	}
	o := tl.Of(0, 2)
	if o.Len() != 2 || o.IsContiguous() {
		t.Errorf("Of(0,2) wrong: %v contiguous=%v", o, o.IsContiguous())
	}
}

func TestMinMax(t *testing.T) {
	tl := MustNew("a", "b", "c", "d", "e")
	iv := tl.Of(1, 3)
	if iv.Min() != 1 || iv.Max() != 3 {
		t.Errorf("Min/Max = %d/%d, want 1/3", iv.Min(), iv.Max())
	}
	e := tl.Empty()
	if e.Min() != -1 || e.Max() != -1 {
		t.Errorf("empty Min/Max = %d/%d, want -1/-1", e.Min(), e.Max())
	}
}

func TestSetOps(t *testing.T) {
	tl := MustNew("a", "b", "c", "d")
	x := tl.Range(0, 2)
	y := tl.Range(1, 3)
	if got := x.Union(y); got.Len() != 4 {
		t.Errorf("Union = %v", got)
	}
	if got := x.Intersect(y); got.Len() != 2 || !got.Contains(1) || !got.Contains(2) {
		t.Errorf("Intersect = %v", got)
	}
	if got := x.Minus(y); got.Len() != 1 || !got.Contains(0) {
		t.Errorf("Minus = %v", got)
	}
	if !x.Intersects(y) {
		t.Error("Intersects = false")
	}
	if !x.Intersect(y).SubsetOf(x) {
		t.Error("intersection should be subset")
	}
	if !x.Equal(tl.Range(0, 2)) {
		t.Error("Equal failed")
	}
}

func TestExtend(t *testing.T) {
	tl := MustNew("a", "b", "c")
	iv := tl.Point(1)
	r, ok := iv.ExtendRight()
	if !ok || !r.Equal(tl.Range(1, 2)) {
		t.Errorf("ExtendRight = %v,%v", r, ok)
	}
	if _, ok := r.ExtendRight(); ok {
		t.Error("ExtendRight at edge should fail")
	}
	l, ok := iv.ExtendLeft()
	if !ok || !l.Equal(tl.Range(0, 1)) {
		t.Errorf("ExtendLeft = %v,%v", l, ok)
	}
	if _, ok := l.ExtendLeft(); ok {
		t.Error("ExtendLeft at edge should fail")
	}
	if _, ok := tl.Empty().ExtendRight(); ok {
		t.Error("ExtendRight of empty should fail")
	}
}

func TestString(t *testing.T) {
	tl := MustNew("2000", "2001", "2002")
	cases := []struct {
		iv   Interval
		want string
	}{
		{tl.Empty(), "∅"},
		{tl.Point(0), "2000"},
		{tl.Range(0, 2), "[2000,2002]"},
		{tl.Of(0, 2), "{2000,2002}"},
	}
	for _, c := range cases {
		if got := c.iv.String(); got != c.want {
			t.Errorf("String = %q, want %q", got, c.want)
		}
	}
}

func TestQuickLatticeLaws(t *testing.T) {
	// The intervals under union/intersection form a lattice (§3.1).
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(20)
		labels := make([]string, n)
		for i := range labels {
			labels[i] = string(rune('A' + i))
		}
		tl := MustNew(labels...)
		ri := func() Interval {
			iv := tl.Empty()
			for i := 0; i < n; i++ {
				if r.Intn(2) == 1 {
					iv = iv.Union(tl.Point(Time(i)))
				}
			}
			return iv
		}
		a, b, c := ri(), ri(), ri()
		return a.Union(b).Equal(b.Union(a)) &&
			a.Intersect(b).Equal(b.Intersect(a)) &&
			a.Union(b.Union(c)).Equal(a.Union(b).Union(c)) &&
			a.Intersect(b.Intersect(c)).Equal(a.Intersect(b).Intersect(c)) &&
			a.Union(a.Intersect(b)).Equal(a) &&
			a.Intersect(a.Union(b)).Equal(a) &&
			a.Minus(b).Union(a.Intersect(b)).Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickExtendGrowsByOne(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(20)
		labels := make([]string, n)
		for i := range labels {
			labels[i] = string(rune('a' + i))
		}
		tl := MustNew(labels...)
		from := Time(r.Intn(n))
		to := from + Time(r.Intn(n-int(from)))
		iv := tl.Range(from, to)
		if right, ok := iv.ExtendRight(); ok {
			if right.Len() != iv.Len()+1 || !iv.SubsetOf(right) || !right.IsContiguous() {
				return false
			}
		} else if int(to) != n-1 {
			return false
		}
		if left, ok := iv.ExtendLeft(); ok {
			if left.Len() != iv.Len()+1 || !iv.SubsetOf(left) || !left.IsContiguous() {
				return false
			}
		} else if from != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
