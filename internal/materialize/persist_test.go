package materialize

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/timeline"
)

func TestStorePersistRoundTrip(t *testing.T) {
	g := dataset.DBLPScaled(1, 0.01)
	s := agg.MustSchema(g, g.MustAttr("gender"), g.MustAttr("publications"))
	st := NewStore(g, s)

	path := filepath.Join(t.TempDir(), "store.json")
	if err := st.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadStoreFile(g, s, path)
	if err != nil {
		t.Fatal(err)
	}
	// Every per-point aggregate and every composed window must match.
	tl := g.Timeline()
	for tp := 0; tp < tl.Len(); tp++ {
		if !back.Point(timeline.Time(tp)).Equal(st.Point(timeline.Time(tp))) {
			t.Fatalf("point %d differs after reload", tp)
		}
	}
	iv := tl.Range(0, 5)
	if !back.UnionAll(iv).Equal(st.UnionAll(iv)) {
		t.Fatal("composed window differs after reload")
	}
}

func TestReadStoreFileValidation(t *testing.T) {
	g := core.PaperExample()
	s := agg.MustSchema(g, g.MustAttr("gender"))
	st := NewStore(g, s)
	dir := t.TempDir()
	path := filepath.Join(dir, "store.json")
	if err := st.WriteFile(path); err != nil {
		t.Fatal(err)
	}

	// Wrong schema (different attribute set).
	other := agg.MustSchema(g, g.MustAttr("publications"))
	if _, err := ReadStoreFile(g, other, path); err == nil {
		t.Error("mismatched schema should fail")
	}
	// Foreign graph.
	g2 := core.PaperExample()
	if _, err := ReadStoreFile(g2, s, path); err == nil {
		t.Error("schema built on another graph should fail")
	}
	// Corrupted JSON.
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadStoreFile(g, s, bad); err == nil {
		t.Error("corrupted file should fail")
	}
	// Missing file.
	if _, err := ReadStoreFile(g, s, filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file should fail")
	}
	// Out-of-domain tuple.
	tampered := filepath.Join(dir, "tampered.json")
	data, _ := os.ReadFile(path)
	if err := os.WriteFile(tampered,
		[]byte(replaceFirst(string(data), `"m"`, `"zz"`)), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadStoreFile(g, s, tampered); err == nil {
		t.Error("out-of-domain tuple should fail")
	}
}

func replaceFirst(s, old, new string) string {
	for i := 0; i+len(old) <= len(s); i++ {
		if s[i:i+len(old)] == old {
			return s[:i] + new + s[i+len(old):]
		}
	}
	return s
}
