package materialize

import (
	"fmt"
	"testing"

	"repro/internal/core"
)

// attrsKeySprintf is the previous implementation, kept only as the
// baseline for BenchmarkAttrsKey: one fmt.Sprintf (reflection + interface
// allocation) per attribute id.
func attrsKeySprintf(attrs []core.AttrID) string {
	key := ""
	for _, a := range attrs {
		key += fmt.Sprintf("%d,", a)
	}
	return key
}

var benchKeySink string

func BenchmarkAttrsKey(b *testing.B) {
	attrs := []core.AttrID{3, 141, 59, 2653, 5}
	b.Run("sprintf", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			benchKeySink = attrsKeySprintf(attrs)
		}
	})
	b.Run("appendint", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			benchKeySink = attrsKey(attrs)
		}
	})
}

func TestAttrsKeyMatchesSprintf(t *testing.T) {
	for _, attrs := range [][]core.AttrID{nil, {0}, {1, 2, 3}, {42, 0, 7}} {
		if got, want := attrsKey(attrs), attrsKeySprintf(attrs); got != want {
			t.Errorf("attrsKey(%v) = %q, want %q", attrs, got, want)
		}
	}
}
