package materialize

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/stream"
	"repro/internal/timeline"
)

// retroSnap builds a one-node ingest batch for the retro tests.
func retroSnap(node, gender, pubs string, peers ...string) stream.Snapshot {
	s := stream.Snapshot{Nodes: []stream.NodeRecord{{
		Label:   node,
		Static:  map[string]string{"gender": gender},
		Varying: map[string]string{"publications": pubs},
	}}}
	for _, p := range peers {
		s.Nodes = append(s.Nodes, stream.NodeRecord{
			Label:   p,
			Static:  map[string]string{"gender": "f"},
			Varying: map[string]string{"publications": "1"},
		})
		s.Edges = append(s.Edges, stream.EdgeRecord{U: node, V: p})
	}
	return s
}

func retroSeries(t *testing.T) *stream.Series {
	t.Helper()
	s := stream.New(
		core.AttrSpec{Name: "gender", Kind: core.Static},
		core.AttrSpec{Name: "publications", Kind: core.TimeVarying},
	)
	for i, batch := range []struct {
		label string
		snap  stream.Snapshot
	}{
		{"t0", retroSnap("u1", "m", "3", "u2")},
		{"t1", retroSnap("u1", "m", "1", "u2", "u3")},
		{"t2", retroSnap("u2", "f", "2", "u3")},
	} {
		if err := s.Append(batch.label, batch.snap); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	return s
}

func seriesGraph(t *testing.T, s *stream.Series) *core.Graph {
	t.Helper()
	g, err := s.Graph()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestAdvanceRetroExtendsStores splices a retroactive point into a catalog
// with live stores and requires the extended stores to match a rebuild.
func TestAdvanceRetroExtendsStores(t *testing.T) {
	s := retroSeries(t)
	g := seriesGraph(t, s)
	cat := NewCatalog(g)
	attrs := []core.AttrID{g.MustAttr("gender")}
	if _, err := cat.Materialize(attrs...); err != nil {
		t.Fatal(err)
	}
	both := []core.AttrID{g.MustAttr("gender"), g.MustAttr("publications")}
	if _, err := cat.Materialize(both...); err != nil {
		t.Fatal(err)
	}

	// Retro batch: existing nodes only (u2 appears at t0/t1/t2 already),
	// so entity identities are stable and stores can splice.
	if _, err := s.AppendAt("t0b", retroSnap("u2", "f", "4"), "t1"); err != nil {
		t.Fatal(err)
	}
	newG := seriesGraph(t, s)
	stats, err := cat.AdvanceRetro(newG)
	if err != nil {
		t.Fatalf("AdvanceRetro: %v", err)
	}
	if stats.Inserted != 1 || stats.FirstDirty != 1 {
		t.Fatalf("stats = %+v, want Inserted=1 FirstDirty=1", stats)
	}
	if stats.Extended+stats.Rebuilt != 2 {
		t.Fatalf("stats = %+v, want 2 stores touched", stats)
	}
	if cat.Graph() != newG {
		t.Fatal("catalog did not adopt the new graph")
	}

	r := rand.New(rand.NewSource(11))
	st, ok := cat.store(attrsKey(attrs))
	if !ok {
		t.Fatal("gender store vanished across AdvanceRetro")
	}
	checkStoreEquivalence(t, r, newG, st, attrs)
	st2, ok := cat.store(attrsKey(both))
	if !ok {
		t.Fatal("gender+publications store vanished across AdvanceRetro")
	}
	checkStoreEquivalence(t, r, newG, st2, both)
}

// TestAdvanceRetroTailAndMiddle mixes a trailing append into the same
// retro delta: both points are inserts relative to the old timeline.
func TestAdvanceRetroTailAndMiddle(t *testing.T) {
	s := retroSeries(t)
	g := seriesGraph(t, s)
	cat := NewCatalog(g)
	attrs := []core.AttrID{g.MustAttr("gender")}
	if _, err := cat.Materialize(attrs...); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AppendAt("t1b", retroSnap("u3", "f", "2"), "t2"); err != nil {
		t.Fatal(err)
	}
	if err := s.Append("t3", retroSnap("u1", "m", "2")); err != nil {
		t.Fatal(err)
	}
	newG := seriesGraph(t, s)
	stats, err := cat.AdvanceRetro(newG)
	if err != nil {
		t.Fatalf("AdvanceRetro: %v", err)
	}
	if stats.Inserted != 2 || stats.FirstDirty != 2 {
		t.Fatalf("stats = %+v, want Inserted=2 FirstDirty=2", stats)
	}
	st, _ := cat.store(attrsKey(attrs))
	checkStoreEquivalence(t, rand.New(rand.NewSource(12)), newG, st, attrs)
}

// TestAdvanceRetroRebuildOnRenumber: a retro batch that introduces a NEW
// node renumbers every node first seen after the insert position — the
// incremental path must refuse and the caller rebuilds.
func TestAdvanceRetroRebuildOnRenumber(t *testing.T) {
	s := retroSeries(t)
	g := seriesGraph(t, s)
	cat := NewCatalog(g)
	if _, err := cat.Materialize(g.MustAttr("gender")); err != nil {
		t.Fatal(err)
	}
	// u9 is new and lands before t1: u3 (first seen at t1) shifts by one.
	if _, err := s.AppendAt("t0b", retroSnap("u9", "m", "7"), "t1"); err != nil {
		t.Fatal(err)
	}
	_, err := cat.AdvanceRetro(seriesGraph(t, s))
	if !errors.Is(err, ErrRetroRebuild) {
		t.Fatalf("AdvanceRetro = %v, want ErrRetroRebuild", err)
	}
}

// TestAdvanceRetroRejectsDroppedPoint: the new timeline must contain the
// old one as a subsequence.
func TestAdvanceRetroRejectsDroppedPoint(t *testing.T) {
	s := retroSeries(t)
	g := seriesGraph(t, s)
	cat := NewCatalog(g)

	s2 := stream.New(s.Attrs()...)
	if err := s2.Append("t0", retroSnap("u1", "m", "3", "u2")); err != nil {
		t.Fatal(err)
	}
	if _, err := cat.AdvanceRetro(seriesGraph(t, s2)); err == nil {
		t.Fatal("AdvanceRetro accepted a timeline that drops points")
	}
}

// TestInsertAtSplicesVector checks the store-level splice directly: the
// inserted point is aggregated fresh, old points keep their objects.
func TestInsertAtSplicesVector(t *testing.T) {
	s := retroSeries(t)
	g := seriesGraph(t, s)
	attrs := []core.AttrID{g.MustAttr("gender")}
	st := NewStore(g, agg.MustSchema(g, attrs...))
	oldPoints := []*agg.Graph{st.Point(0), st.Point(1), st.Point(2)}

	if _, err := s.AppendAt("t0b", retroSnap("u2", "f", "4"), "t1"); err != nil {
		t.Fatal(err)
	}
	newG := seriesGraph(t, s)
	next, err := st.InsertAt(newG, []int{1})
	if err != nil {
		t.Fatalf("InsertAt: %v", err)
	}
	// Old per-point aggregates are position-shifted, not recomputed.
	if next.Point(0) != oldPoints[0] || next.Point(2) != oldPoints[1] || next.Point(3) != oldPoints[2] {
		t.Fatal("InsertAt recomputed aggregates that should have been carried over")
	}
	scratch := NewStore(newG, agg.MustSchema(newG, attrs...))
	for tp := 0; tp < 4; tp++ {
		got, want := mustJSON(t, next.Point(timeline.Time(tp))), mustJSON(t, scratch.Point(timeline.Time(tp)))
		if !bytes.Equal(got, want) {
			t.Fatalf("point %d diverged after splice:\n%s\nvs\n%s", tp, got, want)
		}
	}

	// Shape errors: wrong insert count does not bridge the timelines.
	if _, err := st.InsertAt(newG, []int{1, 2}); err == nil {
		t.Fatal("InsertAt with excess positions succeeded")
	}
}
