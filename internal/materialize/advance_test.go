package materialize

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/dict"
	"repro/internal/gtest"
	"repro/internal/timeline"
)

// The equivalence oracle: replay a finished graph point by point through a
// core.Accumulator (the production ingest path), Advance a catalog after
// every point, and require the incrementally maintained stores to be
// byte-identical — via the sorted, label-decoded JSON encoding — to stores
// rebuilt from scratch on the final graph.

// replayAdvance feeds g's time points one at a time into a fresh
// accumulator, creating a catalog at the first point, materializing
// attrSets, and advancing after every later point. It returns the catalog
// and the summed advance stats.
func replayAdvance(t *testing.T, g *core.Graph, attrSets [][]core.AttrID) (*Catalog, AdvanceStats) {
	t.Helper()
	acc := core.NewAccumulator(g.Attrs()...)
	labels := g.Timeline().Labels()
	var cat *Catalog
	var total AdvanceStats
	for tp := 0; tp < len(labels); tp++ {
		replayPoint(acc, g, tp, labels[tp])
		snap := acc.Snapshot()
		if cat == nil {
			cat = NewCatalog(snap)
			for _, as := range attrSets {
				if _, err := cat.Materialize(as...); err != nil {
					t.Fatalf("materialize %v: %v", as, err)
				}
			}
			continue
		}
		stats, err := cat.Advance(snap)
		if err != nil {
			t.Fatalf("advance to point %d: %v", tp, err)
		}
		total.NewPoints += stats.NewPoints
		total.Extended += stats.Extended
		total.Rebuilt += stats.Rebuilt
	}
	return cat, total
}

// replayPoint folds the content of g's time point tp into acc.
func replayPoint(acc *core.Accumulator, g *core.Graph, tp int, label string) {
	acc.AddPoint(label)
	attrs := g.Attrs()
	for n := 0; n < g.NumNodes(); n++ {
		if !g.NodeTau(core.NodeID(n)).Contains(tp) {
			continue
		}
		id := acc.EnsureNode(g.NodeLabel(core.NodeID(n)))
		acc.SetNodeTime(id)
		for ai, spec := range attrs {
			a := core.AttrID(ai)
			if spec.Kind == core.Static {
				if c := g.StaticValue(a, core.NodeID(n)); c != dict.None {
					acc.SetStatic(a, id, g.Dict(a).Value(c))
				}
			} else if c := g.VaryingValue(a, core.NodeID(n), timeline.Time(tp)); c != dict.None {
				acc.SetVarying(a, id, g.Dict(a).Value(c))
			}
		}
	}
	for e := 0; e < g.NumEdges(); e++ {
		if !g.EdgeTau(core.EdgeID(e)).Contains(tp) {
			continue
		}
		ep := g.Edge(core.EdgeID(e))
		u := acc.EnsureNode(g.NodeLabel(ep.U))
		v := acc.EnsureNode(g.NodeLabel(ep.V))
		acc.SetEdgeTime(acc.EnsureEdge(u, v))
	}
}

// mustJSON renders an aggregate with the deterministic (sorted,
// label-decoded) encoding.
func mustJSON(t *testing.T, ag *agg.Graph) []byte {
	t.Helper()
	b, err := json.Marshal(ag)
	if err != nil {
		t.Fatalf("marshal aggregate: %v", err)
	}
	return b
}

// checkStoreEquivalence requires the incrementally maintained store inc to
// agree byte-for-byte with a from-scratch rebuild on final, per point and
// over intervals through all three composition engines.
func checkStoreEquivalence(t *testing.T, r *rand.Rand, final *core.Graph, inc *Store, attrs []core.AttrID) {
	t.Helper()
	scratch := NewStore(final, agg.MustSchema(final, attrs...))
	tl := final.Timeline()
	n := tl.Len()
	if got := len(inc.perPoint); got != n {
		t.Fatalf("incremental store covers %d points, want %d", got, n)
	}
	for tp := 0; tp < n; tp++ {
		got, want := mustJSON(t, inc.Point(timeline.Time(tp))), mustJSON(t, scratch.Point(timeline.Time(tp)))
		if !bytes.Equal(got, want) {
			t.Fatalf("point %d diverged:\nincremental: %s\nscratch:     %s", tp, got, want)
		}
	}
	ivs := []timeline.Interval{tl.Range(0, timeline.Time(n-1)), tl.Range(timeline.Time(n-1), timeline.Time(n-1))}
	for i := 0; i < 8; i++ {
		a := r.Intn(n)
		b := a + r.Intn(n-a)
		ivs = append(ivs, tl.Range(timeline.Time(a), timeline.Time(b)))
	}
	for _, iv := range ivs {
		want := mustJSON(t, scratch.UnionAllLinear(iv))
		for name, got := range map[string][]byte{
			"prefix": mustJSON(t, inc.UnionAll(iv)),
			"log":    mustJSON(t, inc.UnionAllLog(iv)),
			"linear": mustJSON(t, inc.UnionAllLinear(iv)),
		} {
			if !bytes.Equal(got, want) {
				t.Fatalf("%s over %s diverged:\nincremental: %s\nscratch:     %s", name, iv, got, want)
			}
		}
	}
}

func dblpAttrSets(g *core.Graph) [][]core.AttrID {
	gender, pubs := g.MustAttr("gender"), g.MustAttr("publications")
	return [][]core.AttrID{{gender}, {pubs}, {gender, pubs}}
}

func TestAdvanceEquivalenceDBLP(t *testing.T) {
	for _, scale := range []float64{0.005, 0.01, 0.02} {
		scale := scale
		t.Run(fmt.Sprintf("scale=%v", scale), func(t *testing.T) {
			g := dataset.DBLPScaled(1, scale)
			cat, stats := replayAdvance(t, g, dblpAttrSets(g))
			if stats.NewPoints != g.Timeline().Len()-1 {
				t.Errorf("advanced %d points, want %d", stats.NewPoints, g.Timeline().Len()-1)
			}
			if stats.Extended == 0 {
				t.Errorf("no store was ever extended incrementally (extended=0, rebuilt=%d)", stats.Rebuilt)
			}
			final := cat.Graph()
			r := rand.New(rand.NewSource(int64(1000 * scale)))
			for _, as := range dblpAttrSets(g) {
				st, err := cat.Materialize(as...)
				if err != nil {
					t.Fatal(err)
				}
				checkStoreEquivalence(t, r, final, st, as)
			}
		})
	}
}

func TestAdvanceEquivalenceRandom(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		r := rand.New(rand.NewSource(seed))
		g := gtest.RandomGraph(r, gtest.DefaultParams())
		if g.NumAttrs() == 0 {
			continue
		}
		var attrSets [][]core.AttrID
		for a := 0; a < g.NumAttrs(); a++ {
			attrSets = append(attrSets, []core.AttrID{core.AttrID(a)})
		}
		if g.NumAttrs() >= 2 {
			attrSets = append(attrSets, []core.AttrID{0, 1})
		}
		cat, _ := replayAdvance(t, g, attrSets)
		final := cat.Graph()
		for _, as := range attrSets {
			st, err := cat.Materialize(as...)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			checkStoreEquivalence(t, r, final, st, as)
		}
	}
}

// TestAdvanceCodingChange pins both advance outcomes: points that introduce
// no new attribute value extend stores incrementally, a point whose new
// value grows a dictionary forces a counted rebuild — and the result is
// correct either way.
func TestAdvanceCodingChange(t *testing.T) {
	acc := core.NewAccumulator(core.AttrSpec{Name: "color", Kind: core.Static})
	addPoint := func(label string, nodes map[string]string) *core.Graph {
		acc.AddPoint(label)
		for n, c := range nodes {
			id := acc.EnsureNode(n)
			acc.SetNodeTime(id)
			acc.SetStatic(0, id, c)
		}
		return acc.Snapshot()
	}

	g0 := addPoint("t0", map[string]string{"a": "red", "b": "blue"})
	cat := NewCatalog(g0)
	if _, err := cat.Materialize(0); err != nil {
		t.Fatal(err)
	}

	// Same domain: pure delta apply.
	g1 := addPoint("t1", map[string]string{"a": "red", "c": "blue"})
	stats, err := cat.Advance(g1)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Extended != 1 || stats.Rebuilt != 0 {
		t.Fatalf("same-coding advance: extended=%d rebuilt=%d, want 1/0", stats.Extended, stats.Rebuilt)
	}

	// New value "green" (on a fresh node) grows the color dictionary:
	// coding changes, the store must be rebuilt.
	g2 := addPoint("t2", map[string]string{"d": "green"})
	stats, err = cat.Advance(g2)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Extended != 0 || stats.Rebuilt != 1 {
		t.Fatalf("coding-change advance: extended=%d rebuilt=%d, want 0/1", stats.Extended, stats.Rebuilt)
	}

	st, err := cat.Materialize(0)
	if err != nil {
		t.Fatal(err)
	}
	checkStoreEquivalence(t, rand.New(rand.NewSource(1)), g2, st, []core.AttrID{0})
}

// TestAdvanceRejectsStaticBackfill pins the soundness guard: filling in a
// static value for a node that already existed changes its tuple at every
// OLD time point, so the delta must be refused (the server falls back to a
// full rebuild).
func TestAdvanceRejectsStaticBackfill(t *testing.T) {
	acc := core.NewAccumulator(core.AttrSpec{Name: "color", Kind: core.Static})
	acc.AddPoint("t0")
	id := acc.EnsureNode("a")
	acc.SetNodeTime(id) // no color yet
	g0 := acc.Snapshot()
	cat := NewCatalog(g0)
	if _, err := cat.Materialize(0); err != nil {
		t.Fatal(err)
	}

	acc.AddPoint("t1")
	acc.SetNodeTime(id)
	acc.SetStatic(0, id, "red") // back-fills t0 retroactively
	g1 := acc.Snapshot()
	if _, err := cat.Advance(g1); !errors.Is(err, ErrStaticBackfill) {
		t.Fatalf("advance after static backfill: err = %v, want ErrStaticBackfill", err)
	}
	// The refused catalog still serves its old generation correctly.
	if got := cat.Graph(); got != g0 {
		t.Error("refused advance must leave the catalog on its old generation")
	}
}

func TestAdvanceRejectsNonExtension(t *testing.T) {
	acc := core.NewAccumulator(core.AttrSpec{Name: "c", Kind: core.Static})
	acc.AddPoint("t0")
	id := acc.EnsureNode("a")
	acc.SetNodeTime(id)
	acc.SetStatic(0, id, "x")
	g0 := acc.Snapshot()
	cat := NewCatalog(g0)

	other := core.NewAccumulator(core.AttrSpec{Name: "c", Kind: core.Static})
	other.AddPoint("u0")
	oid := other.EnsureNode("a")
	other.SetNodeTime(oid)
	other.SetStatic(0, oid, "x")
	if _, err := cat.Advance(other.Snapshot()); err == nil {
		t.Error("advance to a graph with a rewritten time point label should fail")
	}
}

// TestAdvanceConcurrentHammer mixes a writer advancing the catalog with 15
// reader goroutines issuing composed interval queries — run under -race it
// proves old generations keep serving while deltas fold in.
func TestAdvanceConcurrentHammer(t *testing.T) {
	const (
		readers = 15
		points  = 40
	)
	acc := core.NewAccumulator(
		core.AttrSpec{Name: "color", Kind: core.Static},
		core.AttrSpec{Name: "load", Kind: core.TimeVarying},
	)
	wr := rand.New(rand.NewSource(99))
	grow := func(tp int) *core.Graph {
		acc.AddPoint(fmt.Sprintf("t%d", tp))
		for i := 0; i < 6; i++ {
			n := wr.Intn(20)
			id := acc.EnsureNode(fmt.Sprintf("n%d", n))
			acc.SetNodeTime(id)
			// Static values must stay consistent across points (the stream
			// layer enforces this); derive the color from the node identity.
			acc.SetStatic(0, id, fmt.Sprintf("c%d", n%3))
			acc.SetVarying(1, id, fmt.Sprintf("l%d", wr.Intn(4)))
		}
		return acc.Snapshot()
	}

	cat := NewCatalog(grow(0))
	if _, err := cat.Materialize(0); err != nil {
		t.Fatal(err)
	}
	if _, err := cat.Materialize(0, 1); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errc := make(chan error, readers)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				g := cat.Graph()
				tl := g.Timeline()
				a := r.Intn(tl.Len())
				b := a + r.Intn(tl.Len()-a)
				iv := tl.Range(timeline.Time(a), timeline.Time(b))
				attrs := []core.AttrID{0}
				if r.Intn(2) == 0 {
					attrs = []core.AttrID{0, 1}
				}
				st, err := cat.Materialize(attrs...)
				if err != nil {
					errc <- err
					return
				}
				var got, want *agg.Graph
				if r.Intn(2) == 0 {
					got = st.UnionAll(iv)
				} else {
					got = st.UnionAllLog(iv)
				}
				want = st.UnionAllLinear(iv)
				if !got.Equal(want) {
					errc <- fmt.Errorf("composed result over %s diverged from linear reference", iv)
					return
				}
				if _, _, err := cat.UnionAll(iv, attrs...); err != nil {
					errc <- err
					return
				}
			}
		}(int64(i))
	}

	for tp := 1; tp < points; tp++ {
		if _, err := cat.Advance(grow(tp)); err != nil {
			close(stop)
			t.Fatalf("advance %d: %v", tp, err)
		}
	}
	close(stop)
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}
