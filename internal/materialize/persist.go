package materialize

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/timeline"
)

// Persistence: a Store's per-time-point aggregates can be written to one
// JSON file and reloaded later — the warehouse workflow behind §4.3, where
// the per-unit-of-time aggregations are precomputed once and reused across
// sessions. Tuples are serialized as decoded attribute values, so a
// reloaded store only requires the same graph schema (attribute names and
// value domains), not identical internal code assignments.

type persistEntry struct {
	Values []string `json:"values"`
	Weight int64    `json:"weight"`
}

type persistEdge struct {
	From   []string `json:"from"`
	To     []string `json:"to"`
	Weight int64    `json:"weight"`
}

type persistPoint struct {
	Label string         `json:"label"`
	Nodes []persistEntry `json:"nodes"`
	Edges []persistEdge  `json:"edges"`
}

type persistFile struct {
	Attributes []string       `json:"attributes"`
	Points     []persistPoint `json:"points"`
}

// WriteFile serializes the store to path as JSON.
func (st *Store) WriteFile(path string) error {
	s := st.schema
	g := s.Graph()
	out := persistFile{}
	for _, a := range s.Attrs() {
		out.Attributes = append(out.Attributes, g.Attr(a).Name)
	}
	for t, ag := range st.perPoint {
		pt := persistPoint{Label: g.Timeline().Label(timeline.Time(t))}
		for _, tu := range ag.SortedNodes() {
			pt.Nodes = append(pt.Nodes, persistEntry{Values: s.Decode(tu), Weight: ag.Nodes[tu]})
		}
		for _, k := range ag.SortedEdges() {
			pt.Edges = append(pt.Edges, persistEdge{
				From: s.Decode(k.From), To: s.Decode(k.To), Weight: ag.Edges[k]})
		}
		out.Points = append(out.Points, pt)
	}
	data, err := json.MarshalIndent(out, "", " ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// NewStoreFromPoints wraps externally decoded per-time-point ALL
// aggregates as a Store — the reconstruction path of binary snapshot
// loading (internal/storage). Every point must carry the given schema and
// the ALL kind, and there must be exactly one per base time point.
func NewStoreFromPoints(s *agg.Schema, perPoint []*agg.Graph) (*Store, error) {
	if want := s.Graph().Timeline().Len(); len(perPoint) != want {
		return nil, fmt.Errorf("materialize: %d per-point aggregates for a timeline of %d points", len(perPoint), want)
	}
	for t, ag := range perPoint {
		if ag == nil || ag.Schema != s {
			return nil, fmt.Errorf("materialize: point %d carries a different schema", t)
		}
		if ag.Kind != agg.All {
			return nil, fmt.Errorf("materialize: point %d is not an ALL aggregate", t)
		}
	}
	return &Store{schema: s, perPoint: perPoint}, nil
}

// ReadStoreFile loads a store previously written with WriteFile, validating
// it against the given graph and schema: the attribute list, time-point
// labels and every tuple value must still resolve.
func ReadStoreFile(g *core.Graph, s *agg.Schema, path string) (*Store, error) {
	if s.Graph() != g {
		return nil, fmt.Errorf("materialize: schema built on a different graph")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var in persistFile
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("materialize: %w", err)
	}
	attrs := s.Attrs()
	if len(in.Attributes) != len(attrs) {
		return nil, fmt.Errorf("materialize: stored attributes %v do not match schema", in.Attributes)
	}
	for i, a := range attrs {
		if g.Attr(a).Name != in.Attributes[i] {
			return nil, fmt.Errorf("materialize: stored attribute %q ≠ schema attribute %q",
				in.Attributes[i], g.Attr(a).Name)
		}
	}
	if len(in.Points) != g.Timeline().Len() {
		return nil, fmt.Errorf("materialize: stored %d time points, graph has %d",
			len(in.Points), g.Timeline().Len())
	}
	st := &Store{schema: s, perPoint: make([]*agg.Graph, len(in.Points))}
	for t, pt := range in.Points {
		if want := g.Timeline().Label(timeline.Time(t)); pt.Label != want {
			return nil, fmt.Errorf("materialize: time point %d labeled %q, want %q", t, pt.Label, want)
		}
		ag := &agg.Graph{
			Schema: s,
			Kind:   agg.All,
			Nodes:  make(map[agg.Tuple]int64, len(pt.Nodes)),
			Edges:  make(map[agg.EdgeKey]int64, len(pt.Edges)),
		}
		for _, n := range pt.Nodes {
			tu, ok := s.Encode(n.Values...)
			if !ok {
				return nil, fmt.Errorf("materialize: stored tuple %v not in attribute domain", n.Values)
			}
			ag.Nodes[tu] = n.Weight
		}
		for _, e := range pt.Edges {
			from, ok1 := s.Encode(e.From...)
			to, ok2 := s.Encode(e.To...)
			if !ok1 || !ok2 {
				return nil, fmt.Errorf("materialize: stored edge tuple %v→%v not in attribute domain", e.From, e.To)
			}
			ag.Edges[agg.EdgeKey{From: from, To: to}] = e.Weight
		}
		st.perPoint[t] = ag
	}
	return st, nil
}
