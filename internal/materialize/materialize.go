// Package materialize implements GraphTempo's partial materialization
// optimizations (§4.3).
//
// Materializing every aggregate of every attribute combination over every
// interval is unrealistic, so the paper proposes precomputing per-time-
// point aggregations and reusing them:
//
//   - T-distributive reuse: the non-distinct (ALL) aggregate of a union
//     graph over an interval is the weight-wise sum of the per-time-point
//     ALL aggregates (distinct union aggregates are NOT T-distributive —
//     distinct entities cannot be identified across precomputed graphs).
//   - D-distributive reuse: the aggregate on an attribute subset A” ⊆ A'
//     is derived from the aggregate on A' by regrouping and summing
//     (agg.Rollup); at a single time point this is exact for DIST too.
//
// Store holds the per-time-point materialization for one schema and
// composes interval queries from flat weight vectors (dense.go): prefix
// sums answer a contiguous run in O(1) vector ops and the doubling/sparse
// table in O(log) additions, with the linear map-merge kept as the
// cross-checked reference. Catalog adds a concurrent query-level serving
// layer — a sharded byte-budgeted LRU with singleflight deduplication and
// atomic per-source counters — that answers aggregate requests from
// materialized results whenever one of the two derivations applies, and
// falls back to computing from scratch (while recording what it did, for
// the speedup experiments of Figs. 10–11).
package materialize

import (
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/lru"
	"repro/internal/ops"
	"repro/internal/timeline"
)

// Store precomputes, for one aggregation schema, the ALL aggregate of
// every base time point (the paper's chosen materialization unit).
// A Store is immutable after construction and safe for concurrent readers;
// the dense composition tables are built lazily on first composed query.
// Append extends a store to a longer timeline by producing a NEW store that
// shares all frozen per-point state — the old store keeps serving.
type Store struct {
	schema   *agg.Schema
	perPoint []*agg.Graph

	compOnce sync.Once
	comp     *composer
}

// NewStore materializes the per-time-point ALL aggregates of g under s.
// All-static schemas (the common materialization unit) are built by one
// pass over the entities' timestamp runs (static.go) instead of one
// aggregation per time point; time-varying schemas take the per-point
// loop.
func NewStore(g *core.Graph, s *agg.Schema) *Store {
	if s.Graph() != g {
		panic("materialize: schema built on a different graph")
	}
	if s.AllStatic() {
		return &Store{schema: s, perPoint: buildPointsStatic(g, s)}
	}
	return &Store{schema: s, perPoint: referencePointsLoop(g, s)}
}

// Append returns a new store extending st with the time points newG has
// beyond st's horizon, in O(batch) aggregation work plus O(slots · log T)
// amortized to extend the dense engine — never a re-aggregation of
// history. newG must be an append-only extension of the store's base graph
// (the old timeline labels are a prefix of newG's). It fails with
// ErrCodingChanged when an attribute dictionary grew — new values change
// the mixed-radix tuple coding, so the per-point vectors are not
// comparable and the caller must rebuild from scratch (Catalog.Advance
// counts those). The old store is left fully usable; a store may be
// extended at most once (callers serialize lineage — Catalog.Advance does
// so under its lock).
func (st *Store) Append(newG *core.Graph) (*Store, error) {
	s2, err := agg.NewSchema(newG, st.schema.Attrs()...)
	if err != nil {
		return nil, err
	}
	if !s2.SameCoding(st.schema) {
		return nil, ErrCodingChanged
	}
	oldN := len(st.perPoint)
	n := newG.Timeline().Len()
	if n < oldN {
		return nil, fmt.Errorf("materialize: graph has %d points, store already covers %d", n, oldN)
	}
	perPoint := st.perPoint[:oldN:oldN]
	for t := oldN; t < n; t++ {
		perPoint = append(perPoint, agg.Aggregate(ops.At(newG, timeline.Time(t)), s2, agg.All))
	}
	next := &Store{schema: s2, perPoint: perPoint}
	// Extend the dense engine eagerly (forcing the parent's lazy build if
	// needed): the first query on the new store must not pay a rebuild.
	next.comp = st.composer().extend(s2, perPoint[oldN:])
	return next, nil
}

// ErrCodingChanged reports that a store cannot be extended because an
// attribute dictionary grew, changing the tuple coding.
var ErrCodingChanged = fmt.Errorf("materialize: attribute coding changed; store must be rebuilt")

// ErrStaticBackfill reports that an advance would be unsound because a
// static attribute value was filled in (or changed) for a node that
// already existed — old per-point aggregates and cached results would no
// longer match a from-scratch rebuild. Callers handle it by rebuilding
// the catalog.
var ErrStaticBackfill = fmt.Errorf("materialize: static attribute back-filled on an existing node")

// Schema returns the store's aggregation schema.
func (st *Store) Schema() *agg.Schema { return st.schema }

// Point returns the materialized ALL aggregate of base time point t.
// The caller must not modify it.
func (st *Store) Point(t timeline.Time) *agg.Graph { return st.perPoint[t] }

// UnionAll composes the ALL aggregate of the union graph over iv from the
// materialized per-point aggregates (T-distributive reuse), without
// touching the base graph. It uses the dense prefix-sum engine: each
// contiguous run of the interval costs one vector subtraction, independent
// of its length, and the result is decoded to maps only at the boundary.
func (st *Store) UnionAll(iv timeline.Interval) *agg.Graph {
	return st.composer().compose(iv, false)
}

// UnionAllLog composes the same result from the doubling/sparse table:
// every contiguous run is split into its binary length decomposition and
// summed with O(log|run|) precomputed vector additions (no subtraction).
// It exists for the Fig. 10 engine comparison; UnionAll is the fast path.
func (st *Store) UnionAllLog(iv timeline.Interval) *agg.Graph {
	return st.composer().compose(iv, true)
}

// UnionAllLinear is the reference composition: merge the per-point
// map-based aggregates one at a time, O(|interval|) map merges. The dense
// engines are cross-checked against it.
func (st *Store) UnionAllLinear(iv timeline.Interval) *agg.Graph {
	out := &agg.Graph{
		Schema: st.schema,
		Kind:   agg.All,
		Nodes:  make(map[agg.Tuple]int64),
		Edges:  make(map[agg.EdgeKey]int64),
	}
	for _, t := range iv.Times() {
		out.Merge(st.perPoint[t])
	}
	return out
}

// PointSubset derives the aggregate of base time point t on a subset of
// the store's attributes by D-distributive roll-up. At a single time
// point the roll-up is exact for both kinds; the result carries the
// store's ALL kind.
func (st *Store) PointSubset(t timeline.Time, attrs ...core.AttrID) (*agg.Graph, error) {
	return agg.Rollup(st.perPoint[t], attrs...)
}

// Source describes how a Catalog answered a request.
type Source int

const (
	// Scratch: computed from the base graph.
	Scratch Source = iota
	// Cached: returned a previously computed result verbatim.
	Cached
	// TDistributive: composed from per-time-point materialized aggregates.
	TDistributive
	// DDistributive: rolled up from a materialized superset aggregate.
	DDistributive

	numSources
)

// String names the source for logs and experiment output.
func (s Source) String() string {
	switch s {
	case Scratch:
		return "scratch"
	case Cached:
		return "cached"
	case TDistributive:
		return "t-distributive"
	default:
		return "d-distributive"
	}
}

// CatalogConfig sizes a Catalog's serving cache. The zero value selects
// the defaults.
type CatalogConfig struct {
	// MaxBytes is the byte budget for cached query results (approximate,
	// see agg.Graph.ApproxBytes); least-recently-used results are evicted
	// beyond it. <= 0 selects 64 MiB.
	MaxBytes int64
	// Shards is the number of independently locked cache shards. <= 0
	// selects 16.
	Shards int
}

// Stats is a snapshot of a Catalog's counters.
type Stats struct {
	// Answers by source. A request deduplicated onto another goroutine's
	// in-flight computation is counted under that computation's source.
	Scratch, Cached, TDistributive, DDistributive int64

	// Serving-cache internals.
	CacheEntries   int
	CacheBytes     int64
	CacheEvictions int64
	CacheDeduped   int64

	// Stores is the number of materialized per-time-point stores.
	Stores int
}

// Answered returns the total number of answered requests.
func (s Stats) Answered() int64 {
	return s.Scratch + s.Cached + s.TDistributive + s.DDistributive
}

// catEntry is a cached query result together with how it was derived.
type catEntry struct {
	g   *agg.Graph
	src Source
}

// Catalog serves union-ALL aggregate requests over one evolving graph,
// reusing a per-time-point store per attribute set and caching full
// results in a sharded LRU. All methods are safe for concurrent use:
// distinct requests proceed in parallel (mutex-per-shard cache,
// RWMutex-guarded store set) and concurrent identical requests are
// deduplicated onto one computation. Advance folds newly appended time
// points into every store without invalidating the cache — the graph is
// append-only and interval cache keys are label-based, so every previously
// cached result stays correct forever.
type Catalog struct {
	mu          sync.RWMutex
	g           *core.Graph // current graph; replaced by Advance
	gen         uint64      // bumped by Advance; guards in-flight builds
	stores      map[string]*Store
	storeFlight map[string]*storeCall

	cache *lru.Cache[catEntry]
	hits  [numSources]atomic.Int64
}

type storeCall struct {
	wg  sync.WaitGroup
	st  *Store
	err error
}

// NewCatalog returns an empty catalog over g with the default cache
// configuration.
func NewCatalog(g *core.Graph) *Catalog {
	return NewCatalogWith(g, CatalogConfig{})
}

// NewCatalogWith returns an empty catalog over g sized by cfg.
func NewCatalogWith(g *core.Graph, cfg CatalogConfig) *Catalog {
	return &Catalog{
		g:           g,
		stores:      make(map[string]*Store),
		storeFlight: make(map[string]*storeCall),
		cache:       lru.New[catEntry](lru.Config{MaxBytes: cfg.MaxBytes, Shards: cfg.Shards}),
	}
}

// attrsKey renders an attribute list as a compact cache key without any
// fmt machinery (one strconv.AppendInt per id, no intermediate strings).
func attrsKey(attrs []core.AttrID) string {
	b := make([]byte, 0, 4*len(attrs))
	for _, a := range attrs {
		b = strconv.AppendInt(b, int64(a), 10)
		b = append(b, ',')
	}
	return string(b)
}

// graph returns the catalog's current graph.
func (c *Catalog) graph() *core.Graph {
	c.mu.RLock()
	g := c.g
	c.mu.RUnlock()
	return g
}

// Graph returns the graph the catalog currently serves (the newest
// generation after Advance calls).
func (c *Catalog) Graph() *core.Graph { return c.graph() }

// Materialize builds (or returns) the per-time-point store for the given
// attribute set. Concurrent calls for the same attribute set share one
// construction. If the catalog Advances while a store is being built, the
// build catches up on the new points before registering.
func (c *Catalog) Materialize(attrs ...core.AttrID) (*Store, error) {
	key := attrsKey(attrs)
	c.mu.Lock()
	if st, ok := c.stores[key]; ok {
		c.mu.Unlock()
		return st, nil
	}
	if call, ok := c.storeFlight[key]; ok {
		c.mu.Unlock()
		call.wg.Wait()
		return call.st, call.err
	}
	call := &storeCall{}
	call.wg.Add(1)
	c.storeFlight[key] = call
	g, gen := c.g, c.gen
	c.mu.Unlock()

	st, err := buildStore(g, attrs)

	c.mu.Lock()
	// The catalog may have advanced while we built against the old graph;
	// fold the missed points in (or rebuild on a coding change) until the
	// generation holds still.
	for err == nil && c.gen != gen {
		g, gen = c.g, c.gen
		c.mu.Unlock()
		if next, aerr := st.Append(g); aerr == nil {
			st = next
		} else {
			st, err = buildStore(g, attrs)
		}
		c.mu.Lock()
	}
	delete(c.storeFlight, key)
	if err == nil {
		c.stores[key] = st
	}
	call.st, call.err = st, err
	c.mu.Unlock()
	call.wg.Done()
	return call.st, call.err
}

func buildStore(g *core.Graph, attrs []core.AttrID) (*Store, error) {
	s, err := agg.NewSchema(g, attrs...)
	if err != nil {
		return nil, err
	}
	return NewStore(g, s), nil
}

// AdvanceStats reports what one Catalog.Advance did.
type AdvanceStats struct {
	// NewPoints is how many time points the advance appended.
	NewPoints int
	// Extended counts stores folded forward incrementally (O(batch)).
	Extended int
	// Rebuilt counts stores re-materialized from scratch because a new
	// attribute value changed their tuple coding.
	Rebuilt int
}

// Advance folds the delta between the catalog's current graph and newG
// into every materialized store: newG must be an append-only extension
// (the current timeline labels are a prefix of newG's, nodes and edges
// only accumulate). Each store is extended in O(batch) aggregation work —
// or rebuilt from scratch when an attribute dictionary grew and changed
// its tuple coding — and the catalog switches to serving newG. The result
// cache and hit counters are retained: cache keys are label-based interval
// strings and the graph is append-only, so every cached result remains
// correct. Concurrent readers keep serving the old stores until the swap;
// in-flight Materialize builds catch up on their own.
func (c *Catalog) Advance(newG *core.Graph) (AdvanceStats, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if newG == c.g {
		return AdvanceStats{}, nil
	}
	oldLabels := c.g.Timeline().Labels()
	newLabels := newG.Timeline().Labels()
	if len(newLabels) < len(oldLabels) {
		return AdvanceStats{}, fmt.Errorf("materialize: advance shrinks the timeline from %d to %d points", len(oldLabels), len(newLabels))
	}
	for i, l := range oldLabels {
		if newLabels[i] != l {
			return AdvanceStats{}, fmt.Errorf("materialize: advance rewrites time point %d (%q → %q)", i, l, newLabels[i])
		}
	}
	// A static value back-filled on a pre-existing node retroactively
	// changes that node's tuple at EVERY old time point, so the frozen
	// per-point aggregates (and cached results) would silently diverge
	// from a scratch rebuild. Refuse the delta; the caller falls back to
	// a full rebuild. Time-varying values and timestamps of old points are
	// immutable in the accumulator lineage, so statics are the only
	// retroactive channel.
	if n := c.g.NumAttrs(); n != newG.NumAttrs() {
		return AdvanceStats{}, fmt.Errorf("materialize: advance changes the attribute schema (%d → %d attributes)", n, newG.NumAttrs())
	}
	oldNodes := c.g.NumNodes()
	for a := 0; a < newG.NumAttrs(); a++ {
		if newG.Attr(core.AttrID(a)).Kind != core.Static {
			continue
		}
		for n := 0; n < oldNodes; n++ {
			if c.g.StaticValue(core.AttrID(a), core.NodeID(n)) != newG.StaticValue(core.AttrID(a), core.NodeID(n)) {
				return AdvanceStats{}, fmt.Errorf("%w: node %q attribute %q",
					ErrStaticBackfill, newG.NodeLabel(core.NodeID(n)), newG.Attr(core.AttrID(a)).Name)
			}
		}
	}
	stats := AdvanceStats{NewPoints: len(newLabels) - len(oldLabels)}
	for key, st := range c.stores {
		next, err := st.Append(newG)
		if err == nil {
			c.stores[key] = next
			stats.Extended++
			continue
		}
		s, err := agg.NewSchema(newG, st.Schema().Attrs()...)
		if err != nil {
			return stats, err
		}
		c.stores[key] = NewStore(newG, s)
		stats.Rebuilt++
	}
	c.g = newG
	c.gen++
	return stats, nil
}

// store returns the materialized store for the exact attribute set, if any.
func (c *Catalog) store(key string) (*Store, bool) {
	c.mu.RLock()
	st, ok := c.stores[key]
	c.mu.RUnlock()
	return st, ok
}

// snapshotStores returns the current stores for iteration outside the lock.
func (c *Catalog) snapshotStores() []*Store {
	c.mu.RLock()
	out := make([]*Store, 0, len(c.stores))
	for _, st := range c.stores {
		out = append(out, st)
	}
	c.mu.RUnlock()
	return out
}

func catEntrySize(e catEntry) int64 { return e.g.ApproxBytes() }

// UnionAll returns the ALL aggregate of the union graph over iv on the
// given attributes, answering from cache or from a materialized store when
// possible and computing from scratch otherwise. The returned Source
// reports which path was taken; results are cached either way. Safe for
// concurrent use; concurrent identical requests share one computation.
func (c *Catalog) UnionAll(iv timeline.Interval, attrs ...core.AttrID) (*agg.Graph, Source, error) {
	skey := attrsKey(attrs)
	key := skey + "@" + iv.String()
	e, cached, err := c.cache.Do(key, catEntrySize, func() (catEntry, error) {
		return c.computeUnionAll(skey, iv, attrs)
	})
	if err != nil {
		return nil, Scratch, err
	}
	if cached {
		c.hits[Cached].Add(1)
		return e.g, Cached, nil
	}
	c.hits[e.src].Add(1)
	return e.g, e.src, nil
}

// Predict reports which source would answer UnionAll(iv, attrs...) right
// now, without computing anything or touching the counters and cache
// recency. It mirrors the serving order — cache, exact store
// (T-distributive), single-point superset store (D-distributive), scratch —
// so the query planner can cost and explain a catalog-backed operator
// before executing it. Concurrent traffic may change the answer between
// Predict and UnionAll; it is a hint, not a promise.
func (c *Catalog) Predict(iv timeline.Interval, attrs ...core.AttrID) Source {
	skey := attrsKey(attrs)
	if c.cache.Contains(skey + "@" + iv.String()) {
		return Cached
	}
	if _, ok := c.store(skey); ok {
		return TDistributive
	}
	if iv.Len() == 1 {
		for _, st := range c.snapshotStores() {
			if covers(st.Schema().Attrs(), attrs) {
				return DDistributive
			}
		}
	}
	return Scratch
}

// computeUnionAll answers a cache miss: T-distributive composition from an
// exact store, D-distributive roll-up from a superset store at a single
// point, or scratch aggregation from the base graph.
func (c *Catalog) computeUnionAll(skey string, iv timeline.Interval, attrs []core.AttrID) (catEntry, error) {
	if st, ok := c.store(skey); ok {
		return catEntry{st.UnionAll(iv), TDistributive}, nil
	}
	// A superset store at a single time point can answer by roll-up.
	if iv.Len() == 1 {
		for _, st := range c.snapshotStores() {
			if covers(st.Schema().Attrs(), attrs) {
				g, err := st.PointSubset(iv.Min(), attrs...)
				if err == nil {
					return catEntry{g, DDistributive}, nil
				}
			}
		}
	}
	g := c.graph()
	s, err := agg.NewSchema(g, attrs...)
	if err != nil {
		return catEntry{}, err
	}
	return catEntry{agg.Aggregate(ops.Union(g, iv, iv), s, agg.All), Scratch}, nil
}

// Stats returns an atomic snapshot of the catalog's counters.
func (c *Catalog) Stats() Stats {
	cs := c.cache.Stats()
	c.mu.RLock()
	stores := len(c.stores)
	c.mu.RUnlock()
	return Stats{
		Scratch:        c.hits[Scratch].Load(),
		Cached:         c.hits[Cached].Load(),
		TDistributive:  c.hits[TDistributive].Load(),
		DDistributive:  c.hits[DDistributive].Load(),
		CacheEntries:   cs.Entries,
		CacheBytes:     cs.Bytes,
		CacheEvictions: cs.Evictions,
		CacheDeduped:   cs.Deduped,
		Stores:         stores,
	}
}

// covers reports whether super contains every attribute of sub.
func covers(super, sub []core.AttrID) bool {
	for _, a := range sub {
		found := false
		for _, b := range super {
			if a == b {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}
