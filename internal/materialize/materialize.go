// Package materialize implements GraphTempo's partial materialization
// optimizations (§4.3).
//
// Materializing every aggregate of every attribute combination over every
// interval is unrealistic, so the paper proposes precomputing per-time-
// point aggregations and reusing them:
//
//   - T-distributive reuse: the non-distinct (ALL) aggregate of a union
//     graph over an interval is the weight-wise sum of the per-time-point
//     ALL aggregates (distinct union aggregates are NOT T-distributive —
//     distinct entities cannot be identified across precomputed graphs).
//   - D-distributive reuse: the aggregate on an attribute subset A” ⊆ A'
//     is derived from the aggregate on A' by regrouping and summing
//     (agg.Rollup); at a single time point this is exact for DIST too.
//
// Store holds the per-time-point materialization for one schema; Catalog
// adds a query-level cache that answers aggregate requests from
// materialized results whenever one of the two derivations applies, and
// falls back to computing from scratch (while recording what it did, for
// the speedup experiments of Figs. 10–11).
package materialize

import (
	"fmt"

	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/ops"
	"repro/internal/timeline"
)

// Store precomputes, for one aggregation schema, the ALL aggregate of
// every base time point (the paper's chosen materialization unit).
type Store struct {
	schema   *agg.Schema
	perPoint []*agg.Graph
}

// NewStore materializes the per-time-point ALL aggregates of g under s.
func NewStore(g *core.Graph, s *agg.Schema) *Store {
	if s.Graph() != g {
		panic("materialize: schema built on a different graph")
	}
	n := g.Timeline().Len()
	st := &Store{schema: s, perPoint: make([]*agg.Graph, n)}
	for t := 0; t < n; t++ {
		st.perPoint[t] = agg.Aggregate(ops.At(g, timeline.Time(t)), s, agg.All)
	}
	return st
}

// Schema returns the store's aggregation schema.
func (st *Store) Schema() *agg.Schema { return st.schema }

// Point returns the materialized ALL aggregate of base time point t.
// The caller must not modify it.
func (st *Store) Point(t timeline.Time) *agg.Graph { return st.perPoint[t] }

// UnionAll composes the ALL aggregate of the union graph over iv from the
// materialized per-point aggregates (T-distributive reuse), without
// touching the base graph.
func (st *Store) UnionAll(iv timeline.Interval) *agg.Graph {
	out := &agg.Graph{
		Schema: st.schema,
		Kind:   agg.All,
		Nodes:  make(map[agg.Tuple]int64),
		Edges:  make(map[agg.EdgeKey]int64),
	}
	for _, t := range iv.Times() {
		out.Merge(st.perPoint[t])
	}
	return out
}

// PointSubset derives the aggregate of base time point t on a subset of
// the store's attributes by D-distributive roll-up. At a single time
// point the roll-up is exact for both kinds; the result carries the
// store's ALL kind.
func (st *Store) PointSubset(t timeline.Time, attrs ...core.AttrID) (*agg.Graph, error) {
	return agg.Rollup(st.perPoint[t], attrs...)
}

// Source describes how a Catalog answered a request.
type Source int

const (
	// Scratch: computed from the base graph.
	Scratch Source = iota
	// Cached: returned a previously computed result verbatim.
	Cached
	// TDistributive: composed from per-time-point materialized aggregates.
	TDistributive
	// DDistributive: rolled up from a materialized superset aggregate.
	DDistributive
)

// String names the source for logs and experiment output.
func (s Source) String() string {
	switch s {
	case Scratch:
		return "scratch"
	case Cached:
		return "cached"
	case TDistributive:
		return "t-distributive"
	default:
		return "d-distributive"
	}
}

// Catalog serves union-ALL aggregate requests over one graph, reusing a
// per-time-point store per attribute set and caching full results.
type Catalog struct {
	g      *core.Graph
	stores map[string]*Store
	cache  map[string]*agg.Graph

	// Hits counts answers by source, for reporting.
	Hits map[Source]int
}

// NewCatalog returns an empty catalog over g.
func NewCatalog(g *core.Graph) *Catalog {
	return &Catalog{
		g:      g,
		stores: make(map[string]*Store),
		cache:  make(map[string]*agg.Graph),
		Hits:   make(map[Source]int),
	}
}

func attrsKey(attrs []core.AttrID) string {
	key := ""
	for _, a := range attrs {
		key += fmt.Sprintf("%d,", a)
	}
	return key
}

// Materialize builds (or returns) the per-time-point store for the given
// attribute set.
func (c *Catalog) Materialize(attrs ...core.AttrID) (*Store, error) {
	key := attrsKey(attrs)
	if st, ok := c.stores[key]; ok {
		return st, nil
	}
	s, err := agg.NewSchema(c.g, attrs...)
	if err != nil {
		return nil, err
	}
	st := NewStore(c.g, s)
	c.stores[key] = st
	return st, nil
}

// UnionAll returns the ALL aggregate of the union graph over iv on the
// given attributes, answering from cache or from a materialized store when
// possible and computing from scratch otherwise. The returned Source
// reports which path was taken; results are cached either way.
func (c *Catalog) UnionAll(iv timeline.Interval, attrs ...core.AttrID) (*agg.Graph, Source, error) {
	key := attrsKey(attrs) + "@" + iv.String()
	if g, ok := c.cache[key]; ok {
		c.Hits[Cached]++
		return g, Cached, nil
	}
	if st, ok := c.stores[attrsKey(attrs)]; ok {
		g := st.UnionAll(iv)
		c.cache[key] = g
		c.Hits[TDistributive]++
		return g, TDistributive, nil
	}
	// A superset store at a single time point can answer by roll-up.
	if iv.Len() == 1 {
		for _, st := range c.stores {
			if covers(st.Schema().Attrs(), attrs) {
				g, err := st.PointSubset(iv.Min(), attrs...)
				if err == nil {
					c.cache[key] = g
					c.Hits[DDistributive]++
					return g, DDistributive, nil
				}
			}
		}
	}
	s, err := agg.NewSchema(c.g, attrs...)
	if err != nil {
		return nil, Scratch, err
	}
	g := agg.Aggregate(ops.Union(c.g, iv, iv), s, agg.All)
	c.cache[key] = g
	c.Hits[Scratch]++
	return g, Scratch, nil
}

// covers reports whether super contains every attribute of sub.
func covers(super, sub []core.AttrID) bool {
	for _, a := range sub {
		found := false
		for _, b := range super {
			if a == b {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}
