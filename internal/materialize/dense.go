package materialize

import (
	"math/bits"

	"repro/internal/agg"
	"repro/internal/timeline"
)

// This file implements the dense interval-composition engine behind
// Store.UnionAll.
//
// The per-time-point ALL aggregates are T-distributive (§4.3): the union
// aggregate over an interval is the weight-wise sum of the per-point
// aggregates. The reference implementation (UnionAllLinear) merges the
// per-point hash maps one at a time — O(|interval|) map merges with a hash
// probe per entry. The dense engine instead flattens every per-point
// aggregate into one []int64 weight vector over a compact slot dictionary
// (slot ↔ mixed-radix tuple code of internal/agg: one slot per node tuple
// and per edge key that is non-zero at ANY time point), and precomputes
// over those vectors
//
//   - prefix sums: prefix[i] = Σ points[0..i), so a contiguous run [a,b]
//     composes with ONE vector subtraction, prefix[b+1] − prefix[a] — the
//     O(1) two-lookup path (COUNT weights are invertible, so subtraction is
//     exact; idempotent aggregates would need the sparse table below), and
//   - a doubling/sparse table: level[l][i] = Σ points[i..i+2^l), so a run
//     composes from its binary length decomposition with O(log|run|) pure
//     vector additions and no subtraction.
//
// Decoding back to an *agg.Graph happens only at the boundary, with
// exactly-sized result maps. Both engines are cross-checked against the
// linear reference by randomized equivalence tests.
//
// The engine is APPENDABLE: slots are interned in first-seen order into one
// interleaved append-only dictionary (order), vectors keep the width they
// had when built (a missing tail reads as zero), and appending one time
// point costs O(slots) for the new level-0 vector and prefix entry plus
// O(slots · log T) amortized for the doubling table — never a rebuild of
// history. extend produces a NEW composer sharing the frozen backing
// arrays with its parent, so readers of the old generation are undisturbed;
// a composer may be extended at most once (Catalog.Advance enforces a
// single lineage).
//
// The structures are built lazily on the first composed query (sync.Once,
// so a Store is safe for concurrent UnionAll callers) and cost
// O(points × slots × log points) int64 adds and ~8·slots·(2n + n·log n)
// bytes — compact-slot indexing, not the full Domain² space, keeps that
// small even for wide schemas.

// composer holds the flattened per-point weight vectors and their prefix
// and sparse tables. Immutable once built, except through extend.
type composer struct {
	schema *agg.Schema

	// Interleaved slot dictionary in first-seen order: order[j] ≥ 0 indexes
	// nodeCodes, order[j] < 0 indexes edgeCodes as ^order[j]. Interleaving
	// makes the slot space append-only — a node tuple first seen at point
	// 12 gets a slot beyond every vector built before it, so old (shorter)
	// vectors stay valid with their missing tail meaning zero.
	order     []int32
	nodeCodes []agg.Tuple
	edgeCodes []agg.EdgeKey
	nodeSlot  map[agg.Tuple]int
	edgeSlot  map[agg.EdgeKey]int
	width     int

	points [][]int64   // level-0 vectors, one per base time point (ragged)
	prefix [][]int64   // prefix[i] = Σ points[0..i); len = n+1 (ragged)
	levels [][][]int64 // levels[l][i] = Σ points[i..i+2^l); l ≥ 1 (ragged)
}

// composer returns the store's dense composition engine, building it on
// first use. Stores produced by Append carry their engine eagerly; the
// nil check keeps the sync.Once from overwriting it.
func (st *Store) composer() *composer {
	st.compOnce.Do(func() {
		if st.comp == nil {
			st.comp = buildComposer(st.schema, st.perPoint)
		}
	})
	return st.comp
}

func newComposer(s *agg.Schema) *composer {
	return &composer{
		schema:   s,
		nodeSlot: make(map[agg.Tuple]int),
		edgeSlot: make(map[agg.EdgeKey]int),
	}
}

func buildComposer(s *agg.Schema, perPoint []*agg.Graph) *composer {
	c := newComposer(s)
	for _, ag := range perPoint {
		c.appendPoint(ag)
	}
	return c
}

// extend returns a new composer over schema s covering the parent's points
// plus newPoints. Backing arrays of frozen vectors are shared; every
// append-path slice uses a capacity-clamped header so growth reallocates
// instead of scribbling over the parent's spare capacity, and the slot
// maps are cloned (O(slots)) so the parent stays immutable.
func (c *composer) extend(s *agg.Schema, newPoints []*agg.Graph) *composer {
	n := &composer{
		schema:    s,
		order:     c.order[:len(c.order):len(c.order)],
		nodeCodes: c.nodeCodes[:len(c.nodeCodes):len(c.nodeCodes)],
		edgeCodes: c.edgeCodes[:len(c.edgeCodes):len(c.edgeCodes)],
		nodeSlot:  make(map[agg.Tuple]int, len(c.nodeSlot)),
		edgeSlot:  make(map[agg.EdgeKey]int, len(c.edgeSlot)),
		width:     c.width,
		points:    c.points[:len(c.points):len(c.points)],
		prefix:    c.prefix[:len(c.prefix):len(c.prefix)],
		levels:    make([][][]int64, len(c.levels)),
	}
	for tu, j := range c.nodeSlot {
		n.nodeSlot[tu] = j
	}
	for k, j := range c.edgeSlot {
		n.edgeSlot[k] = j
	}
	for l, lv := range c.levels {
		n.levels[l] = lv[:len(lv):len(lv)]
	}
	for _, ag := range newPoints {
		n.appendPoint(ag)
	}
	return n
}

// appendPoint folds one more per-point aggregate into the engine:
// O(result size) to intern slots and flatten, O(width) for the new prefix
// entry, and O(width) per doubling-table entry whose span closes at the
// new point — O(log T) of them, so O(width · log T) amortized.
func (c *composer) appendPoint(ag *agg.Graph) {
	vec := make([]int64, c.width, c.width+len(ag.Nodes)+len(ag.Edges))
	for tu, w := range ag.Nodes {
		j, ok := c.nodeSlot[tu]
		if !ok {
			j = c.addNodeSlot(tu)
			vec = append(vec, 0)
		}
		vec[j] = w
	}
	for k, w := range ag.Edges {
		j, ok := c.edgeSlot[k]
		if !ok {
			j = c.addEdgeSlot(k)
			vec = append(vec, 0)
		}
		vec[j] = w
	}
	c.points = append(c.points, vec)

	n := len(c.points)
	if len(c.prefix) == 0 {
		// First point: prefix[0] is the empty sum.
		c.prefix = append(c.prefix, []int64{})
	}
	// prefix[n] = prefix[n-1] + vec, at the new width.
	pv := make([]int64, c.width)
	copy(pv, c.prefix[len(c.prefix)-1])
	for j, w := range vec {
		pv[j] += w
	}
	c.prefix = append(c.prefix, pv)

	// Close every doubling-table block that ends at the new point: span
	// 2^l blocks starting at n-2^l, for each level with 2^l ≤ n.
	for l := 1; 1<<l <= n; l++ {
		if l > len(c.levels) {
			c.levels = append(c.levels, nil)
		}
		i := n - 1<<l
		half := 1 << (l - 1)
		a, b := c.block(l-1, i), c.block(l-1, i+half)
		bv := make([]int64, c.width)
		copy(bv, a)
		for j, w := range b {
			bv[j] += w
		}
		c.levels[l-1] = append(c.levels[l-1], bv)
	}
}

func (c *composer) addNodeSlot(tu agg.Tuple) int {
	j := c.width
	c.order = append(c.order, int32(len(c.nodeCodes)))
	c.nodeCodes = append(c.nodeCodes, tu)
	c.nodeSlot[tu] = j
	c.width++
	return j
}

func (c *composer) addEdgeSlot(k agg.EdgeKey) int {
	j := c.width
	c.order = append(c.order, ^int32(len(c.edgeCodes)))
	c.edgeCodes = append(c.edgeCodes, k)
	c.edgeSlot[k] = j
	c.width++
	return j
}

// block returns the precomputed sum of points [i, i+2^l).
func (c *composer) block(l, i int) []int64 {
	if l == 0 {
		return c.points[i]
	}
	return c.levels[l-1][i]
}

// runs decomposes the interval into maximal contiguous [a,b] runs.
func runs(iv timeline.Interval) [][2]int {
	var out [][2]int
	ts := iv.Times()
	for i := 0; i < len(ts); {
		j := i
		for j+1 < len(ts) && ts[j+1] == ts[j]+1 {
			j++
		}
		out = append(out, [2]int{int(ts[i]), int(ts[j])})
		i = j + 1
	}
	return out
}

// addPrefix accumulates the run [a,b] into acc via one prefix-sum
// subtraction (two vector lookups, O(width) adds regardless of run length).
// The two prefix vectors may have different (older, shorter) widths than
// acc; absent tail entries are zero.
func (c *composer) addPrefix(acc []int64, a, b int) {
	for j, w := range c.prefix[b+1] {
		acc[j] += w
	}
	for j, w := range c.prefix[a] {
		acc[j] -= w
	}
}

// addLog accumulates the run [a,b] into acc from its binary length
// decomposition over the sparse table: O(log(b-a+1)) vector additions.
func (c *composer) addLog(acc []int64, a, b int) {
	for length := b - a + 1; length > 0; {
		l := bits.Len(uint(length)) - 1
		for j, w := range c.block(l, a) {
			acc[j] += w
		}
		a += 1 << l
		length -= 1 << l
	}
}

// decode materializes the accumulated weight vector as an aggregate graph
// with exactly-sized maps, skipping zero slots.
func (c *composer) decode(acc []int64) *agg.Graph {
	cn, ce := 0, 0
	for j, w := range acc {
		if w == 0 {
			continue
		}
		if c.order[j] >= 0 {
			cn++
		} else {
			ce++
		}
	}
	out := &agg.Graph{
		Schema: c.schema,
		Kind:   agg.All,
		Nodes:  make(map[agg.Tuple]int64, cn),
		Edges:  make(map[agg.EdgeKey]int64, ce),
	}
	for j, w := range acc {
		if w == 0 {
			continue
		}
		if o := c.order[j]; o >= 0 {
			out.Nodes[c.nodeCodes[o]] = w
		} else {
			out.Edges[c.edgeCodes[^o]] = w
		}
	}
	return out
}

// compose runs one of the two vector engines over the interval's runs.
func (c *composer) compose(iv timeline.Interval, log bool) *agg.Graph {
	acc := make([]int64, c.width)
	for _, r := range runs(iv) {
		if log {
			c.addLog(acc, r[0], r[1])
		} else {
			c.addPrefix(acc, r[0], r[1])
		}
	}
	return c.decode(acc)
}
