package materialize

import (
	"math/bits"

	"repro/internal/agg"
	"repro/internal/timeline"
)

// This file implements the dense interval-composition engine behind
// Store.UnionAll.
//
// The per-time-point ALL aggregates are T-distributive (§4.3): the union
// aggregate over an interval is the weight-wise sum of the per-point
// aggregates. The reference implementation (UnionAllLinear) merges the
// per-point hash maps one at a time — O(|interval|) map merges with a hash
// probe per entry. The dense engine instead flattens every per-point
// aggregate into one []int64 weight vector over a compact slot dictionary
// (slot ↔ mixed-radix tuple code of internal/agg: one slot per node tuple
// and per from*Domain+to edge code that is non-zero at ANY time point), and
// precomputes over those vectors
//
//   - prefix sums: prefix[i] = Σ points[0..i), so a contiguous run [a,b]
//     composes with ONE vector subtraction, prefix[b+1] − prefix[a] — the
//     O(1) two-lookup path (COUNT weights are invertible, so subtraction is
//     exact; idempotent aggregates would need the sparse table below), and
//   - a doubling/sparse table: level[l][i] = Σ points[i..i+2^l), so a run
//     composes from its binary length decomposition with O(log|run|) pure
//     vector additions and no subtraction.
//
// Decoding back to an *agg.Graph happens only at the boundary, with
// exactly-sized result maps. Both engines are cross-checked against the
// linear reference by randomized equivalence tests.
//
// The structures are built lazily on the first composed query (sync.Once,
// so a Store is safe for concurrent UnionAll callers) and cost
// O(points × slots × log points) int64 adds and ~8·slots·(2n + n·log n)
// bytes — compact-slot indexing, not the full Domain² space, keeps that
// small even for wide schemas.

// composer holds the flattened per-point weight vectors and their prefix
// and sparse tables. Immutable once built.
type composer struct {
	schema *agg.Schema

	// Slot dictionary: slots [0, len(nodeCodes)) are node tuples, slots
	// [len(nodeCodes), width) are edge keys, in first-seen order.
	nodeCodes []agg.Tuple
	edgeCodes []agg.EdgeKey
	width     int

	points [][]int64   // level-0 vectors, one per base time point
	prefix [][]int64   // prefix[i] = Σ points[0..i); len = n+1
	levels [][][]int64 // levels[l][i] = Σ points[i..i+2^l); l ≥ 1
}

// composer returns the store's dense composition engine, building it on
// first use.
func (st *Store) composer() *composer {
	st.compOnce.Do(func() {
		st.comp = buildComposer(st.schema, st.perPoint)
	})
	return st.comp
}

func buildComposer(s *agg.Schema, perPoint []*agg.Graph) *composer {
	c := &composer{schema: s}
	nodeSlot := make(map[agg.Tuple]int)
	edgeSlot := make(map[agg.EdgeKey]int)
	for _, ag := range perPoint {
		for tu := range ag.Nodes {
			if _, ok := nodeSlot[tu]; !ok {
				nodeSlot[tu] = len(c.nodeCodes)
				c.nodeCodes = append(c.nodeCodes, tu)
			}
		}
		for k := range ag.Edges {
			if _, ok := edgeSlot[k]; !ok {
				edgeSlot[k] = len(c.edgeCodes)
				c.edgeCodes = append(c.edgeCodes, k)
			}
		}
	}
	nn := len(c.nodeCodes)
	c.width = nn + len(c.edgeCodes)

	n := len(perPoint)
	c.points = make([][]int64, n)
	for t, ag := range perPoint {
		vec := make([]int64, c.width)
		for tu, w := range ag.Nodes {
			vec[nodeSlot[tu]] = w
		}
		for k, w := range ag.Edges {
			vec[nn+edgeSlot[k]] = w
		}
		c.points[t] = vec
	}

	c.prefix = make([][]int64, n+1)
	c.prefix[0] = make([]int64, c.width)
	for i := 0; i < n; i++ {
		vec := make([]int64, c.width)
		prev, pt := c.prefix[i], c.points[i]
		for j := range vec {
			vec[j] = prev[j] + pt[j]
		}
		c.prefix[i+1] = vec
	}

	// Doubling table: level l spans 2^l points; level 0 is points itself.
	for span := 2; span <= n; span <<= 1 {
		lower := c.points
		if len(c.levels) > 0 {
			lower = c.levels[len(c.levels)-1]
		}
		half := span / 2
		level := make([][]int64, n-span+1)
		for i := range level {
			vec := make([]int64, c.width)
			a, b := lower[i], lower[i+half]
			for j := range vec {
				vec[j] = a[j] + b[j]
			}
			level[i] = vec
		}
		c.levels = append(c.levels, level)
	}
	return c
}

// block returns the precomputed sum of points [i, i+2^l).
func (c *composer) block(l, i int) []int64 {
	if l == 0 {
		return c.points[i]
	}
	return c.levels[l-1][i]
}

// runs decomposes the interval into maximal contiguous [a,b] runs.
func runs(iv timeline.Interval) [][2]int {
	var out [][2]int
	ts := iv.Times()
	for i := 0; i < len(ts); {
		j := i
		for j+1 < len(ts) && ts[j+1] == ts[j]+1 {
			j++
		}
		out = append(out, [2]int{int(ts[i]), int(ts[j])})
		i = j + 1
	}
	return out
}

// addPrefix accumulates the run [a,b] into acc via one prefix-sum
// subtraction (two vector lookups, O(width) adds regardless of run length).
func (c *composer) addPrefix(acc []int64, a, b int) {
	pa, pb := c.prefix[a], c.prefix[b+1]
	for j := range acc {
		acc[j] += pb[j] - pa[j]
	}
}

// addLog accumulates the run [a,b] into acc from its binary length
// decomposition over the sparse table: O(log(b-a+1)) vector additions.
func (c *composer) addLog(acc []int64, a, b int) {
	for length := b - a + 1; length > 0; {
		l := bits.Len(uint(length)) - 1
		blk := c.block(l, a)
		for j := range acc {
			acc[j] += blk[j]
		}
		a += 1 << l
		length -= 1 << l
	}
}

// decode materializes the accumulated weight vector as an aggregate graph
// with exactly-sized maps, skipping zero slots.
func (c *composer) decode(acc []int64) *agg.Graph {
	nn := len(c.nodeCodes)
	cn, ce := 0, 0
	for j, w := range acc {
		if w == 0 {
			continue
		}
		if j < nn {
			cn++
		} else {
			ce++
		}
	}
	out := &agg.Graph{
		Schema: c.schema,
		Kind:   agg.All,
		Nodes:  make(map[agg.Tuple]int64, cn),
		Edges:  make(map[agg.EdgeKey]int64, ce),
	}
	for j, tu := range c.nodeCodes {
		if w := acc[j]; w != 0 {
			out.Nodes[tu] = w
		}
	}
	for j, k := range c.edgeCodes {
		if w := acc[nn+j]; w != 0 {
			out.Edges[k] = w
		}
	}
	return out
}

// compose runs one of the two vector engines over the interval's runs.
func (c *composer) compose(iv timeline.Interval, log bool) *agg.Graph {
	acc := make([]int64, c.width)
	for _, r := range runs(iv) {
		if log {
			c.addLog(acc, r[0], r[1])
		} else {
			c.addPrefix(acc, r[0], r[1])
		}
	}
	return c.decode(acc)
}
