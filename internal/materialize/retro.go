package materialize

import (
	"fmt"

	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/dict"
	"repro/internal/ops"
	"repro/internal/timeline"
)

// This file relaxes the catalog's suffix-only advance rule for retroactive
// ingest: a new time point inserted into the middle of the valid-time axis.
// The per-point materialization unit makes this tractable — an insert
// dirties exactly one slot of every store's per-point vector; the old
// aggregates keep their positions on either side because they are pure
// tuple→weight maps with no time index inside them. What CANNOT survive an
// insert is anything keyed by interval labels (the result cache: an old
// interval now spans one more point) and any plan bounded past the insert
// position — AdvanceRetro reports FirstDirty so the plan cache can evict
// exactly those.

// ErrRetroRebuild reports that a retroactive change reassigned entity
// identities or back-filled values in a way the incremental path cannot
// absorb; the caller must rebuild the catalog from scratch.
var ErrRetroRebuild = fmt.Errorf("materialize: retroactive change is not incrementally absorbable; catalog must be rebuilt")

// InsertAt returns a new store whose per-point vector has the aggregates of
// the time points listed in inserted (ascending indices into newG's
// timeline) spliced in, and the old aggregates everywhere else. newG's
// timeline must interleave the store's covered points with exactly the
// inserted ones. Fails with ErrCodingChanged when the insert changed the
// tuple coding (a new attribute value, or existing values re-ordered by the
// valid-order dictionary rebuild) — the old vectors are then not comparable
// and the caller rebuilds.
//
// The dense composition tables are NOT carried over: positions shift, so
// the first composed query on the new store pays one lazy rebuild. That is
// the cost model of retroactive ingest — O(#inserts) aggregation now,
// O(T·slots) amortized composition later — versus O(T) re-aggregation for
// a full rebuild.
func (st *Store) InsertAt(newG *core.Graph, inserted []int) (*Store, error) {
	s2, err := agg.NewSchema(newG, st.schema.Attrs()...)
	if err != nil {
		return nil, err
	}
	if !s2.SameCoding(st.schema) {
		return nil, ErrCodingChanged
	}
	n := newG.Timeline().Len()
	if len(st.perPoint)+len(inserted) != n {
		return nil, fmt.Errorf("materialize: insert of %d points does not bridge %d covered to %d total",
			len(inserted), len(st.perPoint), n)
	}
	perPoint := make([]*agg.Graph, 0, n)
	next, old := 0, 0
	for t := 0; t < n; t++ {
		if next < len(inserted) && inserted[next] == t {
			perPoint = append(perPoint, agg.Aggregate(ops.At(newG, timeline.Time(t)), s2, agg.All))
			next++
			continue
		}
		perPoint = append(perPoint, st.perPoint[old])
		old++
	}
	if next != len(inserted) {
		return nil, fmt.Errorf("materialize: inserted position %d beyond timeline of %d points", inserted[next], n)
	}
	return &Store{schema: s2, perPoint: perPoint}, nil
}

// RetroStats reports what one Catalog.AdvanceRetro did.
type RetroStats struct {
	// Inserted is how many time points were spliced into the timeline
	// (trailing appends that rode along with the retro batch included).
	Inserted int
	// Extended counts stores absorbed incrementally via InsertAt.
	Extended int
	// Rebuilt counts stores re-materialized from scratch (coding changed).
	Rebuilt int
	// FirstDirty is the lowest new-timeline index whose content changed —
	// every cached plan or result bounded at or beyond it is stale. Equal
	// to the old timeline length for a pure tail append.
	FirstDirty int
}

// AdvanceRetro folds a retroactive delta into the catalog: newG's timeline
// must contain the current timeline's labels as a subsequence, with the
// extra points inserted anywhere (not just at the end, as Advance demands).
// Stores absorb each insert in O(1) aggregations or rebuild on a coding
// change; the result cache is PURGED, because its interval keys are
// label-ranges whose content changed. Returns ErrRetroRebuild when entity
// identities shifted (the valid-order accumulator rebuild renumbered old
// nodes) or a static value changed on a pre-existing node — cases where old
// per-point vectors cannot be trusted and the caller must rebuild.
func (c *Catalog) AdvanceRetro(newG *core.Graph) (RetroStats, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if newG == c.g {
		return RetroStats{FirstDirty: c.g.Timeline().Len()}, nil
	}
	oldLabels := c.g.Timeline().Labels()
	newLabels := newG.Timeline().Labels()
	var inserted []int
	i := 0
	for j, l := range newLabels {
		if i < len(oldLabels) && oldLabels[i] == l {
			i++
		} else {
			inserted = append(inserted, j)
		}
	}
	if i != len(oldLabels) {
		return RetroStats{}, fmt.Errorf("materialize: retro advance drops time point %q", oldLabels[i])
	}
	if len(inserted) == 0 {
		return RetroStats{}, fmt.Errorf("%w: graph changed without new time points", ErrRetroRebuild)
	}
	if n := c.g.NumAttrs(); n != newG.NumAttrs() {
		return RetroStats{}, fmt.Errorf("materialize: retro advance changes the attribute schema (%d → %d attributes)", n, newG.NumAttrs())
	}
	// The valid-order accumulator rebuild assigns node IDs by first
	// appearance; a retro batch introducing a new node renumbers every node
	// first seen after the insert position. Old per-point aggregates are
	// ID-free, but the static comparison below is ID-indexed — so identity
	// preservation is checked first, and a shift punts to a full rebuild.
	oldNodes := c.g.NumNodes()
	if newG.NumNodes() < oldNodes {
		return RetroStats{}, fmt.Errorf("%w: node count shrank", ErrRetroRebuild)
	}
	for n := 0; n < oldNodes; n++ {
		if c.g.NodeLabel(core.NodeID(n)) != newG.NodeLabel(core.NodeID(n)) {
			return RetroStats{}, fmt.Errorf("%w: node %d renumbered (%q → %q)", ErrRetroRebuild,
				n, c.g.NodeLabel(core.NodeID(n)), newG.NodeLabel(core.NodeID(n)))
		}
	}
	// Static values must agree on pre-existing nodes, compared as decoded
	// strings: the rebuild may have re-ordered dictionary codes even when
	// the value sets are identical.
	for a := 0; a < newG.NumAttrs(); a++ {
		if newG.Attr(core.AttrID(a)).Kind != core.Static {
			continue
		}
		for n := 0; n < oldNodes; n++ {
			ov := staticString(c.g, core.AttrID(a), core.NodeID(n))
			nv := staticString(newG, core.AttrID(a), core.NodeID(n))
			if ov != nv {
				return RetroStats{}, fmt.Errorf("%w: node %q attribute %q back-filled (%q → %q)", ErrRetroRebuild,
					newG.NodeLabel(core.NodeID(n)), newG.Attr(core.AttrID(a)).Name, ov, nv)
			}
		}
	}
	stats := RetroStats{Inserted: len(inserted), FirstDirty: inserted[0]}
	for key, st := range c.stores {
		next, err := st.InsertAt(newG, inserted)
		if err == nil {
			c.stores[key] = next
			stats.Extended++
			continue
		}
		s, serr := agg.NewSchema(newG, st.Schema().Attrs()...)
		if serr != nil {
			return stats, serr
		}
		c.stores[key] = NewStore(newG, s)
		stats.Rebuilt++
	}
	// Interval cache keys are label ranges; the inserted point changed what
	// every spanning range contains. Unlike Advance, nothing survives.
	c.cache.Purge()
	c.g = newG
	c.gen++
	return stats, nil
}

// staticString decodes a node's static attribute value, "" when unset.
func staticString(g *core.Graph, a core.AttrID, n core.NodeID) string {
	c := g.StaticValue(a, n)
	if c == dict.None {
		return ""
	}
	return g.Dict(a).Value(c)
}
