package materialize

import (
	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/ops"
	"repro/internal/timeline"
)

// This file builds the per-time-point materialization of an all-static
// schema in one pass over the entities instead of one aggregation per time
// point. A node with static tuple c existing over a run [lo, hi) of time
// points contributes +1 to c's weight at every point of the run; recording
// the run as a pair of diff-array updates (+1 at lo, -1 at hi) and
// prefix-summing over time afterwards turns the O(T·(V+E)) per-point loop
// into O((V+E)·runs + T·tuples) — the timestamp vectors are walked in
// their compressed run form, never expanded to individual time points.

// diffRows accumulates diff arrays per tuple key, lazily allocated.
type diffRows[K comparable] struct {
	T    int
	keys []K
	rows map[K][]int32
}

func newDiffRows[K comparable](T int) *diffRows[K] {
	return &diffRows[K]{T: T, rows: make(map[K][]int32)}
}

func (d *diffRows[K]) add(key K, lo, hi int) {
	row, ok := d.rows[key]
	if !ok {
		row = make([]int32, d.T+1)
		d.rows[key] = row
		d.keys = append(d.keys, key)
	}
	row[lo]++
	row[hi]--
}

// buildPointsStatic returns, for an all-static schema, per-point aggregate
// graphs identical to agg.Aggregate(ops.At(g, t), s, agg.All) for every t.
func buildPointsStatic(g *core.Graph, s *agg.Schema) []*agg.Graph {
	T := g.Timeline().Len()
	nodes := newDiffRows[agg.Tuple](T)
	// Static tuples are computed once per node; they double as the edge
	// endpoint tuples below. -1 marks an incomplete tuple (excluded).
	codes := make([]int64, g.NumNodes())
	for n := 0; n < g.NumNodes(); n++ {
		tu, ok := s.StaticTuple(core.NodeID(n))
		if !ok {
			codes[n] = -1
			continue
		}
		codes[n] = int64(tu)
		g.NodeTauVec(core.NodeID(n)).ForEachRun(func(lo, hi int) {
			nodes.add(tu, lo, hi)
		})
	}
	edges := newDiffRows[agg.EdgeKey](T)
	for e := 0; e < g.NumEdges(); e++ {
		ep := g.Edge(core.EdgeID(e))
		cu, cv := codes[ep.U], codes[ep.V]
		if cu < 0 || cv < 0 {
			continue
		}
		key := agg.EdgeKey{From: agg.Tuple(cu), To: agg.Tuple(cv)}
		g.EdgeTauVec(core.EdgeID(e)).ForEachRun(func(lo, hi int) {
			edges.add(key, lo, hi)
		})
	}

	perPoint := make([]*agg.Graph, T)
	nodeRun := make([]int64, len(nodes.keys))
	edgeRun := make([]int64, len(edges.keys))
	for t := 0; t < T; t++ {
		ag := &agg.Graph{Schema: s, Kind: agg.All}
		live := 0
		for i, key := range nodes.keys {
			nodeRun[i] += int64(nodes.rows[key][t])
			if nodeRun[i] != 0 {
				live++
			}
		}
		ag.Nodes = make(map[agg.Tuple]int64, live)
		for i, key := range nodes.keys {
			if nodeRun[i] != 0 {
				ag.Nodes[key] = nodeRun[i]
			}
		}
		live = 0
		for i, key := range edges.keys {
			edgeRun[i] += int64(edges.rows[key][t])
			if edgeRun[i] != 0 {
				live++
			}
		}
		ag.Edges = make(map[agg.EdgeKey]int64, live)
		for i, key := range edges.keys {
			if edgeRun[i] != 0 {
				ag.Edges[key] = edgeRun[i]
			}
		}
		perPoint[t] = ag
	}
	return perPoint
}

// referencePointsLoop is the original construction — one single-point
// aggregation per base time point. It is the cross-checked reference for
// buildPointsStatic and the path time-varying schemas still take.
func referencePointsLoop(g *core.Graph, s *agg.Schema) []*agg.Graph {
	n := g.Timeline().Len()
	perPoint := make([]*agg.Graph, n)
	for t := 0; t < n; t++ {
		perPoint[t] = agg.Aggregate(ops.At(g, timeline.Time(t)), s, agg.All)
	}
	return perPoint
}
