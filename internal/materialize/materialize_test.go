package materialize

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/gtest"
	"repro/internal/ops"
	"repro/internal/timeline"
)

func TestUnionAllComposition(t *testing.T) {
	g := core.PaperExample()
	tl := g.Timeline()
	s := agg.MustSchema(g, g.MustAttr("gender"), g.MustAttr("publications"))
	st := NewStore(g, s)

	iv := tl.Range(0, 1)
	composed := st.UnionAll(iv)
	scratch := agg.Aggregate(ops.Union(g, iv, iv), s, agg.All)
	if !composed.Equal(scratch) {
		t.Fatalf("T-distributive composition disagrees:\n%s\nvs\n%s", composed, scratch)
	}
	// Spot check the paper's ALL number: w(f,1) = 4 on the union of t0,t1.
	f1, _ := s.Encode("f", "1")
	if composed.NodeWeight(f1) != 4 {
		t.Errorf("composed w(f,1) = %d, want 4", composed.NodeWeight(f1))
	}
}

func TestPointSubsetRollup(t *testing.T) {
	g := core.PaperExample()
	s := agg.MustSchema(g, g.MustAttr("gender"), g.MustAttr("publications"))
	st := NewStore(g, s)
	gender := g.MustAttr("gender")
	for tp := 0; tp < 3; tp++ {
		rolled, err := st.PointSubset(timeline.Time(tp), gender)
		if err != nil {
			t.Fatal(err)
		}
		direct := agg.Aggregate(ops.At(g, timeline.Time(tp)), agg.MustSchema(g, gender), agg.All)
		if !rolled.Equal(direct) {
			t.Errorf("t%d: rollup disagrees with direct", tp)
		}
	}
}

func TestStorePanicsOnForeignSchema(t *testing.T) {
	g1 := core.PaperExample()
	g2 := core.PaperExample()
	s := agg.MustSchema(g2, g2.MustAttr("gender"))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewStore(g1, s)
}

func TestCatalogSources(t *testing.T) {
	g := core.PaperExample()
	tl := g.Timeline()
	gender := g.MustAttr("gender")
	pubs := g.MustAttr("publications")

	c := NewCatalog(g)
	// Nothing materialized: scratch.
	_, src, err := c.UnionAll(tl.Range(0, 1), gender)
	if err != nil {
		t.Fatal(err)
	}
	if src != Scratch {
		t.Errorf("source = %v, want scratch", src)
	}
	// Same request again: cached.
	_, src, _ = c.UnionAll(tl.Range(0, 1), gender)
	if src != Cached {
		t.Errorf("source = %v, want cached", src)
	}
	// Materialize (gender): T-distributive for other intervals.
	if _, err := c.Materialize(gender); err != nil {
		t.Fatal(err)
	}
	got, src, _ := c.UnionAll(tl.Range(0, 2), gender)
	if src != TDistributive {
		t.Errorf("source = %v, want t-distributive", src)
	}
	want := agg.Aggregate(ops.Union(g, tl.Range(0, 2), tl.Range(0, 2)), agg.MustSchema(g, gender), agg.All)
	if !got.Equal(want) {
		t.Error("t-distributive answer differs from scratch")
	}
	// Materialize (gender, pubs): single-point subset requests roll up.
	if _, err := c.Materialize(gender, pubs); err != nil {
		t.Fatal(err)
	}
	gotP, src, _ := c.UnionAll(tl.Point(2), pubs)
	if src != DDistributive {
		t.Errorf("source = %v, want d-distributive", src)
	}
	wantP := agg.Aggregate(ops.At(g, 2), agg.MustSchema(g, pubs), agg.All)
	if !gotP.Equal(wantP) {
		t.Error("d-distributive answer differs from scratch")
	}
	if c.Hits[Scratch] != 1 || c.Hits[Cached] != 1 || c.Hits[TDistributive] != 1 || c.Hits[DDistributive] != 1 {
		t.Errorf("hit counts = %v", c.Hits)
	}
}

func TestCatalogBadAttrs(t *testing.T) {
	g := core.PaperExample()
	c := NewCatalog(g)
	if _, err := c.Materialize(); err == nil {
		t.Error("Materialize with no attributes should fail")
	}
	if _, _, err := c.UnionAll(g.Timeline().Point(0)); err == nil {
		t.Error("UnionAll with no attributes should fail")
	}
}

func TestQuickTDistributiveEqualsScratch(t *testing.T) {
	// §4.3's claim: union + non-distinct aggregation is T-distributive.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := gtest.RandomGraph(r, gtest.DefaultParams())
		if g.NumAttrs() == 0 {
			return true
		}
		attrs := make([]core.AttrID, g.NumAttrs())
		for i := range attrs {
			attrs[i] = core.AttrID(i)
		}
		s := agg.MustSchema(g, attrs...)
		st := NewStore(g, s)
		iv := gtest.RandomInterval(r, g.Timeline())
		composed := st.UnionAll(iv)
		scratch := agg.Aggregate(ops.Union(g, iv, iv), s, agg.All)
		return composed.Equal(scratch)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDistinctNotTDistributiveWitness(t *testing.T) {
	// §4.3 also notes DIST union aggregates are NOT T-distributive: find a
	// witness where summing per-point DIST aggregates over-counts.
	found := false
	for seed := int64(0); seed < 300 && !found; seed++ {
		r := rand.New(rand.NewSource(seed))
		g := gtest.RandomGraph(r, gtest.DefaultParams())
		if g.NumAttrs() == 0 {
			continue
		}
		attrs := make([]core.AttrID, g.NumAttrs())
		for i := range attrs {
			attrs[i] = core.AttrID(i)
		}
		s := agg.MustSchema(g, attrs...)
		iv := g.Timeline().All()
		summed := &agg.Graph{Schema: s, Kind: agg.Distinct,
			Nodes: map[agg.Tuple]int64{}, Edges: map[agg.EdgeKey]int64{}}
		for tp := 0; tp < g.Timeline().Len(); tp++ {
			summed.Merge(agg.Aggregate(ops.At(g, timeline.Time(tp)), s, agg.Distinct))
		}
		scratch := agg.Aggregate(ops.Union(g, iv, iv), s, agg.Distinct)
		if !summed.Equal(scratch) {
			found = true
		}
	}
	if !found {
		t.Fatal("no witness that DIST is not T-distributive")
	}
}
