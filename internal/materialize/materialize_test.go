package materialize

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/gtest"
	"repro/internal/ops"
	"repro/internal/timeline"
)

func TestUnionAllComposition(t *testing.T) {
	g := core.PaperExample()
	tl := g.Timeline()
	s := agg.MustSchema(g, g.MustAttr("gender"), g.MustAttr("publications"))
	st := NewStore(g, s)

	iv := tl.Range(0, 1)
	scratch := agg.Aggregate(ops.Union(g, iv, iv), s, agg.All)
	for name, composed := range map[string]*agg.Graph{
		"prefix": st.UnionAll(iv),
		"log":    st.UnionAllLog(iv),
		"linear": st.UnionAllLinear(iv),
	} {
		if !composed.Equal(scratch) {
			t.Fatalf("%s T-distributive composition disagrees:\n%s\nvs\n%s", name, composed, scratch)
		}
		// Spot check the paper's ALL number: w(f,1) = 4 on the union of t0,t1.
		f1, _ := s.Encode("f", "1")
		if composed.NodeWeight(f1) != 4 {
			t.Errorf("%s composed w(f,1) = %d, want 4", name, composed.NodeWeight(f1))
		}
	}
}

func TestUnionAllEmptyAndNonContiguous(t *testing.T) {
	g := core.PaperExample()
	s := agg.MustSchema(g, g.MustAttr("gender"))
	st := NewStore(g, s)
	tl := g.Timeline()

	empty := st.UnionAll(tl.Empty())
	if len(empty.Nodes) != 0 || len(empty.Edges) != 0 {
		t.Errorf("empty interval composed non-empty aggregate: %s", empty)
	}
	// Non-contiguous {t0, t2} decomposes into two runs.
	iv := tl.Of(0, 2)
	want := st.UnionAllLinear(iv)
	if got := st.UnionAll(iv); !got.Equal(want) {
		t.Errorf("prefix composition over %s differs from linear", iv)
	}
	if got := st.UnionAllLog(iv); !got.Equal(want) {
		t.Errorf("sparse-table composition over %s differs from linear", iv)
	}
}

func TestPointSubsetRollup(t *testing.T) {
	g := core.PaperExample()
	s := agg.MustSchema(g, g.MustAttr("gender"), g.MustAttr("publications"))
	st := NewStore(g, s)
	gender := g.MustAttr("gender")
	for tp := 0; tp < 3; tp++ {
		rolled, err := st.PointSubset(timeline.Time(tp), gender)
		if err != nil {
			t.Fatal(err)
		}
		direct := agg.Aggregate(ops.At(g, timeline.Time(tp)), agg.MustSchema(g, gender), agg.All)
		if !rolled.Equal(direct) {
			t.Errorf("t%d: rollup disagrees with direct", tp)
		}
	}
}

func TestStorePanicsOnForeignSchema(t *testing.T) {
	g1 := core.PaperExample()
	g2 := core.PaperExample()
	s := agg.MustSchema(g2, g2.MustAttr("gender"))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewStore(g1, s)
}

func TestCatalogSources(t *testing.T) {
	g := core.PaperExample()
	tl := g.Timeline()
	gender := g.MustAttr("gender")
	pubs := g.MustAttr("publications")

	c := NewCatalog(g)
	// Nothing materialized: scratch.
	_, src, err := c.UnionAll(tl.Range(0, 1), gender)
	if err != nil {
		t.Fatal(err)
	}
	if src != Scratch {
		t.Errorf("source = %v, want scratch", src)
	}
	// Same request again: cached.
	_, src, _ = c.UnionAll(tl.Range(0, 1), gender)
	if src != Cached {
		t.Errorf("source = %v, want cached", src)
	}
	// Materialize (gender): T-distributive for other intervals.
	if _, err := c.Materialize(gender); err != nil {
		t.Fatal(err)
	}
	got, src, _ := c.UnionAll(tl.Range(0, 2), gender)
	if src != TDistributive {
		t.Errorf("source = %v, want t-distributive", src)
	}
	want := agg.Aggregate(ops.Union(g, tl.Range(0, 2), tl.Range(0, 2)), agg.MustSchema(g, gender), agg.All)
	if !got.Equal(want) {
		t.Error("t-distributive answer differs from scratch")
	}
	// Materialize (gender, pubs): single-point subset requests roll up.
	if _, err := c.Materialize(gender, pubs); err != nil {
		t.Fatal(err)
	}
	gotP, src, _ := c.UnionAll(tl.Point(2), pubs)
	if src != DDistributive {
		t.Errorf("source = %v, want d-distributive", src)
	}
	wantP := agg.Aggregate(ops.At(g, 2), agg.MustSchema(g, pubs), agg.All)
	if !gotP.Equal(wantP) {
		t.Error("d-distributive answer differs from scratch")
	}
	st := c.Stats()
	if st.Scratch != 1 || st.Cached != 1 || st.TDistributive != 1 || st.DDistributive != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.Answered() != 4 {
		t.Errorf("answered = %d, want 4", st.Answered())
	}
	if st.Stores != 2 {
		t.Errorf("stores = %d, want 2", st.Stores)
	}
	if st.CacheEntries != 3 || st.CacheBytes <= 0 {
		t.Errorf("cache residency = %d entries / %d bytes", st.CacheEntries, st.CacheBytes)
	}
}

func TestCatalogBadAttrs(t *testing.T) {
	g := core.PaperExample()
	c := NewCatalog(g)
	if _, err := c.Materialize(); err == nil {
		t.Error("Materialize with no attributes should fail")
	}
	if _, _, err := c.UnionAll(g.Timeline().Point(0)); err == nil {
		t.Error("UnionAll with no attributes should fail")
	}
	if st := c.Stats(); st.Answered() != 0 {
		t.Errorf("failed requests were counted: %+v", st)
	}
}

func TestCatalogEviction(t *testing.T) {
	g := core.PaperExample()
	// A budget far below one aggregate's footprint: every result is evicted
	// immediately, so repeats recompute instead of hitting the cache.
	c := NewCatalogWith(g, CatalogConfig{MaxBytes: 1, Shards: 1})
	gender := g.MustAttr("gender")
	for i := 0; i < 3; i++ {
		if _, _, err := c.UnionAll(g.Timeline().Range(0, 1), gender); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Cached != 0 {
		t.Errorf("cached answers under a zero budget: %+v", st)
	}
	if st.Scratch != 3 {
		t.Errorf("scratch = %d, want 3", st.Scratch)
	}
	if st.CacheEvictions < 3 {
		t.Errorf("evictions = %d, want >= 3", st.CacheEvictions)
	}
}

// TestCatalogConcurrentHammer drives a catalog from 16 goroutines mixing
// UnionAll (varied intervals and attribute sets), Materialize and Stats —
// the -race workload of the concurrent serving layer. Every answer is
// checked against a serially computed reference.
func TestCatalogConcurrentHammer(t *testing.T) {
	g := core.PaperExample()
	tl := g.Timeline()
	gender := g.MustAttr("gender")
	pubs := g.MustAttr("publications")

	type query struct {
		iv    timeline.Interval
		attrs []core.AttrID
	}
	var queries []query
	for a := 0; a < tl.Len(); a++ {
		for b := a; b < tl.Len(); b++ {
			iv := tl.Range(timeline.Time(a), timeline.Time(b))
			queries = append(queries,
				query{iv, []core.AttrID{gender}},
				query{iv, []core.AttrID{pubs}},
				query{iv, []core.AttrID{gender, pubs}})
		}
	}
	want := make([]*agg.Graph, len(queries))
	for i, q := range queries {
		s := agg.MustSchema(g, q.attrs...)
		want[i] = agg.Aggregate(ops.Union(g, q.iv, q.iv), s, agg.All)
	}

	c := NewCatalogWith(g, CatalogConfig{MaxBytes: 1 << 20, Shards: 4})
	const workers = 16
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if w%4 == 0 { // some workers race store materialization
				if _, err := c.Materialize(gender); err != nil {
					errs <- err
					return
				}
			}
			for rep := 0; rep < 3; rep++ {
				for off := 0; off < len(queries); off++ {
					i := (off + w*7) % len(queries)
					got, _, err := c.UnionAll(queries[i].iv, queries[i].attrs...)
					if err != nil {
						errs <- err
						return
					}
					if !got.Equal(want[i]) {
						errs <- fmt.Errorf("worker %d: wrong answer for query %d", w, i)
						return
					}
				}
				c.Stats()
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := c.Stats()
	if got := st.Answered(); got != int64(workers*3*len(queries)) {
		t.Errorf("answered = %d, want %d", got, workers*3*len(queries))
	}
}

// TestQuickDenseEqualsLinear is the randomized equivalence of the dense
// composition engines against the linear map-merge reference: random
// graphs, random attribute subsets, random (possibly non-contiguous)
// intervals.
func TestQuickDenseEqualsLinear(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := gtest.RandomGraph(r, gtest.DefaultParams())
		if g.NumAttrs() == 0 {
			return true
		}
		// Random non-empty attribute subset in random order.
		perm := r.Perm(g.NumAttrs())
		n := 1 + r.Intn(g.NumAttrs())
		attrs := make([]core.AttrID, n)
		for i := 0; i < n; i++ {
			attrs[i] = core.AttrID(perm[i])
		}
		s := agg.MustSchema(g, attrs...)
		st := NewStore(g, s)
		for trial := 0; trial < 4; trial++ {
			var iv timeline.Interval
			if trial%2 == 0 {
				iv = gtest.RandomInterval(r, g.Timeline())
			} else {
				// Arbitrary point set: exercises the run decomposition.
				var ts []timeline.Time
				for p := 0; p < g.Timeline().Len(); p++ {
					if r.Intn(2) == 0 {
						ts = append(ts, timeline.Time(p))
					}
				}
				iv = g.Timeline().Of(ts...)
			}
			want := st.UnionAllLinear(iv)
			if !st.UnionAll(iv).Equal(want) || !st.UnionAllLog(iv).Equal(want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickTDistributiveEqualsScratch(t *testing.T) {
	// §4.3's claim: union + non-distinct aggregation is T-distributive.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := gtest.RandomGraph(r, gtest.DefaultParams())
		if g.NumAttrs() == 0 {
			return true
		}
		attrs := make([]core.AttrID, g.NumAttrs())
		for i := range attrs {
			attrs[i] = core.AttrID(i)
		}
		s := agg.MustSchema(g, attrs...)
		st := NewStore(g, s)
		iv := gtest.RandomInterval(r, g.Timeline())
		composed := st.UnionAll(iv)
		scratch := agg.Aggregate(ops.Union(g, iv, iv), s, agg.All)
		return composed.Equal(scratch)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDistinctNotTDistributiveWitness(t *testing.T) {
	// §4.3 also notes DIST union aggregates are NOT T-distributive: find a
	// witness where summing per-point DIST aggregates over-counts.
	found := false
	for seed := int64(0); seed < 300 && !found; seed++ {
		r := rand.New(rand.NewSource(seed))
		g := gtest.RandomGraph(r, gtest.DefaultParams())
		if g.NumAttrs() == 0 {
			continue
		}
		attrs := make([]core.AttrID, g.NumAttrs())
		for i := range attrs {
			attrs[i] = core.AttrID(i)
		}
		s := agg.MustSchema(g, attrs...)
		iv := g.Timeline().All()
		summed := &agg.Graph{Schema: s, Kind: agg.Distinct,
			Nodes: map[agg.Tuple]int64{}, Edges: map[agg.EdgeKey]int64{}}
		for tp := 0; tp < g.Timeline().Len(); tp++ {
			summed.Merge(agg.Aggregate(ops.At(g, timeline.Time(tp)), s, agg.Distinct))
		}
		scratch := agg.Aggregate(ops.Union(g, iv, iv), s, agg.Distinct)
		if !summed.Equal(scratch) {
			found = true
		}
	}
	if !found {
		t.Fatal("no witness that DIST is not T-distributive")
	}
}
