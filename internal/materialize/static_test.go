package materialize

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/timeline"
)

// equalAgg compares two aggregate graphs by contents.
func equalAgg(t *testing.T, label string, got, want *agg.Graph) {
	t.Helper()
	if len(got.Nodes) != len(want.Nodes) || len(got.Edges) != len(want.Edges) {
		t.Fatalf("%s: sizes diverge: nodes %d/%d edges %d/%d",
			label, len(got.Nodes), len(want.Nodes), len(got.Edges), len(want.Edges))
	}
	for tu, w := range want.Nodes {
		if got.Nodes[tu] != w {
			t.Fatalf("%s: node %v weight %d, want %d", label, tu, got.Nodes[tu], w)
		}
	}
	for k, w := range want.Edges {
		if got.Edges[k] != w {
			t.Fatalf("%s: edge %v weight %d, want %d", label, k, got.Edges[k], w)
		}
	}
	if got.Kind != want.Kind {
		t.Fatalf("%s: kind %v, want %v", label, got.Kind, want.Kind)
	}
}

// TestBuildPointsStaticEquivalence cross-checks the one-pass diff-array
// store construction against the per-point reference loop, on DBLP and on
// random graphs with long timelines (where vectors actually compress).
func TestBuildPointsStaticEquivalence(t *testing.T) {
	check := func(name string, g *core.Graph, attrs ...core.AttrID) {
		s := agg.MustSchema(g, attrs...)
		got := buildPointsStatic(g, s)
		want := referencePointsLoop(g, s)
		if len(got) != len(want) {
			t.Fatalf("%s: %d points, want %d", name, len(got), len(want))
		}
		for i := range got {
			equalAgg(t, fmt.Sprintf("%s point %d", name, i), got[i], want[i])
		}
	}

	dblp := dataset.DBLPScaled(42, 0.05)
	check("dblp/gender", dblp, dblp.MustAttr("gender"))

	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		T := 65 + rng.Intn(200)
		labels := make([]string, T)
		for i := range labels {
			labels[i] = fmt.Sprintf("t%d", i)
		}
		tl := timeline.MustNew(labels...)
		b := core.NewBuilder(tl, core.AttrSpec{Name: "grp", Kind: core.Static})
		nNodes := 5 + rng.Intn(40)
		lifeLo := make([]int, nNodes) // contiguous lifetimes, tracked for edges
		lifeHi := make([]int, nNodes)
		for n := 0; n < nNodes; n++ {
			id := b.AddNode(fmt.Sprintf("n%d", n))
			lo := rng.Intn(T)
			hi := lo + 1 + rng.Intn(T-lo)
			lifeLo[n], lifeHi[n] = lo, hi
			for tt := lo; tt < hi; tt++ {
				b.SetNodeTime(id, timeline.Time(tt))
			}
			if rng.Intn(8) != 0 { // leave some tuples incomplete
				b.SetStatic(0, id, fmt.Sprintf("g%d", rng.Intn(3)))
			}
		}
		for k := 0; k < 2*nNodes; k++ {
			u := rng.Intn(nNodes)
			v := rng.Intn(nNodes)
			lo := max(lifeLo[u], lifeLo[v])
			hi := min(lifeHi[u], lifeHi[v])
			if lo >= hi {
				continue
			}
			e := b.AddEdge(core.NodeID(u), core.NodeID(v))
			for tt := lo; tt < hi; tt++ {
				if tt == lo || rng.Intn(3) > 0 { // mostly-run edge lifetimes
					b.SetEdgeTime(e, timeline.Time(tt))
				}
			}
		}
		g, err := b.Build()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		check(fmt.Sprintf("random %d", trial), g, 0)
	}
}
