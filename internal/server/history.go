package server

import (
	"fmt"
	"strconv"

	"repro/internal/core"
	"repro/internal/lru"
	"repro/internal/plan"
)

// This file implements plan.HistoryResolver over the server's transaction
// log: AS OF queries reconstruct the graph as of a WAL position (durable
// mode replays snapshot + partial WAL; plain stream mode replays the
// in-memory journal), VALID DURING restrictions window a base state. Every
// reconstructed state gets its own materialization catalog and plan cache
// so repeated audit queries against the same position are as cheap as
// queries against the head, and all of it sits behind a byte-budgeted LRU:
// historical states are immutable (a transaction prefix never changes, even
// under retroactive ingest), so entries never need invalidation — only
// eviction under memory pressure.

// headTxn returns the current transaction watermark: the number of ingest
// records ever applied. Zero in static mode, which has no transaction log.
func (s *Server) headTxn() int {
	if s.storage != nil {
		return s.storage.TxnSeq()
	}
	if s.series != nil {
		return s.series.Txn()
	}
	return 0
}

// histBytes estimates the resident footprint of one reconstructed state for
// the LRU budget: graph columns plus the catalog's per-point schema arrays.
func histBytes(st plan.HistState) int64 {
	g := st.Graph
	if g == nil {
		return 4096
	}
	attrs := int64(len(g.Attrs()))
	if attrs == 0 {
		attrs = 1
	}
	points := int64(g.Timeline().Len())
	if points == 0 {
		points = 1
	}
	return 4096 +
		int64(g.NumNodes())*(16+8*attrs) + // labels, per-attr columns
		int64(g.NumEdges())*24 + // endpoints + time
		points*256 // timeline + per-point store rows
}

// histDo answers from the history LRU, reconstructing (graph, catalog,
// plan cache) on a miss. Concurrent requests for the same key share one
// reconstruction via the cache's flight dedup.
func (s *Server) histDo(key string, build func() (*core.Graph, error)) (plan.HistState, error) {
	st, _, err := s.hist.Do(key, histBytes, func() (plan.HistState, error) {
		g, err := build()
		if err != nil {
			return plan.HistState{}, err
		}
		return plan.HistState{Graph: g, Catalog: s.newCatalog(g), Plans: plan.NewCache(0)}, nil
	})
	return st, err
}

// replayTo reconstructs the graph as of transaction txn. Durable mode uses
// the engine's bounded replay (snapshot resume + partial WAL when the
// covered prefix allows it); plain stream mode replays the series journal.
func (s *Server) replayTo(txn int) (*core.Graph, error) {
	if s.storage != nil {
		g, _, err := s.storage.ReplayTo(txn)
		return g, err
	}
	return s.series.ReplayTo(txn)
}

// StateAt implements plan.HistoryResolver: the serving state as of
// transaction txn. Txn 0 (and the current watermark) resolve to the live
// head — same graph, catalog and plan cache the latest-state path serves,
// so AS OF <head> costs nothing extra and is byte-identical to a plain
// query. Earlier positions are reconstructed and cached.
func (s *Server) StateAt(txn int) (plan.HistState, error) {
	head := s.headTxn()
	if txn == 0 || txn == head {
		st, err := s.current()
		if err != nil {
			return plan.HistState{}, err
		}
		// Accept the live state only when it is exactly the asked-for
		// transaction (a concurrent ingest may have advanced past it).
		if txn == 0 || st.gen == txn {
			return plan.HistState{Graph: st.g, Catalog: st.cat, Plans: s.plans}, nil
		}
	}
	if s.series == nil {
		return plan.HistState{}, fmt.Errorf("static mode has no transaction log")
	}
	if txn < 1 || txn > head {
		return plan.HistState{}, fmt.Errorf("transaction %d is out of range [1, %d]", txn, head)
	}
	return s.histDo("txn="+strconv.Itoa(txn), func() (*core.Graph, error) {
		return s.replayTo(txn)
	})
}

// WindowAt implements plan.HistoryResolver: the state as of txn restricted
// to the valid-time window [from, to]. Windowed states are cached under
// their own keys so audit dashboards sweeping a fixed window across
// transactions (or windows across one transaction) stay warm.
func (s *Server) WindowAt(txn, from, to int) (plan.HistState, error) {
	if txn == 0 {
		txn = s.headTxn()
	}
	key := "txn=" + strconv.Itoa(txn) + "|valid=" + strconv.Itoa(from) + "-" + strconv.Itoa(to)
	return s.histDo(key, func() (*core.Graph, error) {
		base, err := s.StateAt(txn)
		if err != nil {
			return nil, err
		}
		return core.Window(base.Graph, from, to)
	})
}

// newHistCache sizes the history LRU from the config (<= 0 selects 256 MiB).
func newHistCache(bytes int64) *lru.Cache[plan.HistState] {
	if bytes <= 0 {
		bytes = 256 << 20
	}
	return lru.New[plan.HistState](lru.Config{MaxBytes: bytes})
}
