package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"time"

	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/evolution"
	"repro/internal/explore"
	"repro/internal/materialize"
	"repro/internal/ops"
	"repro/internal/stream"
	"repro/internal/tgql"
	"repro/internal/timeline"
)

// errNotReady is returned while a stream-mode server has no data yet.
var errNotReady = errors.New("server: no time points ingested yet")

// maxBodyBytes bounds request bodies (ingest snapshots included).
const maxBodyBytes = 64 << 20

// decodeJSON strictly decodes the request body into v.
func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	return nil
}

// IntervalSpec selects a set of time points by label: either a contiguous
// range {"from": "t0", "to": "t2"} (to defaults to from, i.e. one point)
// or an explicit point set {"points": ["t0", "t2"]}.
type IntervalSpec struct {
	From   string   `json:"from,omitempty"`
	To     string   `json:"to,omitempty"`
	Points []string `json:"points,omitempty"`
}

// interval resolves the spec on tl.
func (sp IntervalSpec) interval(tl *timeline.Timeline) (timeline.Interval, error) {
	if len(sp.Points) > 0 {
		if sp.From != "" || sp.To != "" {
			return timeline.Interval{}, fmt.Errorf("interval: points and from/to are mutually exclusive")
		}
		ts := make([]timeline.Time, len(sp.Points))
		for i, l := range sp.Points {
			t, ok := tl.TimeOf(l)
			if !ok {
				return timeline.Interval{}, fmt.Errorf("interval: unknown time point %q", l)
			}
			ts[i] = t
		}
		return tl.Of(ts...), nil
	}
	if sp.From == "" {
		return timeline.Interval{}, fmt.Errorf("interval: from or points required")
	}
	from, ok := tl.TimeOf(sp.From)
	if !ok {
		return timeline.Interval{}, fmt.Errorf("interval: unknown time point %q", sp.From)
	}
	if sp.To == "" {
		return tl.Point(from), nil
	}
	to, ok := tl.TimeOf(sp.To)
	if !ok {
		return timeline.Interval{}, fmt.Errorf("interval: unknown time point %q", sp.To)
	}
	if to < from {
		return timeline.Interval{}, fmt.Errorf("interval: %q is before %q", sp.To, sp.From)
	}
	return tl.Range(from, to), nil
}

// clampWorkers caps client-supplied parallelism at the host's GOMAXPROCS:
// the engines allocate per-worker state and spawn one goroutine per worker,
// so an unclamped request could exhaust memory with a single huge value.
// Zero and negative values keep their engine-specific meaning.
func clampWorkers(n int) int {
	if max := runtime.GOMAXPROCS(0); n > max {
		return max
	}
	return n
}

// parseKind maps the wire kind to agg.Kind; empty defaults to DIST.
func parseKind(s string) (agg.Kind, error) {
	switch s {
	case "", "dist", "distinct":
		return agg.Distinct, nil
	case "all":
		return agg.All, nil
	default:
		return 0, fmt.Errorf("unknown kind %q (want dist or all)", s)
	}
}

// attrIDs resolves attribute names on g.
func attrIDs(g *core.Graph, names []string) ([]core.AttrID, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("attrs required")
	}
	ids := make([]core.AttrID, len(names))
	for i, n := range names {
		a, ok := g.AttrByName(n)
		if !ok {
			return nil, fmt.Errorf("unknown attribute %q", n)
		}
		ids[i] = a
	}
	return ids, nil
}

// AggregateRequest asks for the aggregate graph of a temporal operator
// applied to one or two intervals.
type AggregateRequest struct {
	// Op is one of project, union, intersection, difference.
	Op        string       `json:"op"`
	Interval  IntervalSpec `json:"interval"`
	Interval2 IntervalSpec `json:"interval2,omitempty"`
	Attrs     []string     `json:"attrs"`
	// Kind is dist (default) or all.
	Kind string `json:"kind,omitempty"`
	// Workers bounds the parallel aggregation; 0 selects GOMAXPROCS.
	Workers int `json:"workers,omitempty"`
}

// AggregateResponse carries the aggregate graph and how it was derived.
type AggregateResponse struct {
	// Source is the materialization catalog's derivation (scratch, cached,
	// t-distributive, d-distributive).
	Source    string          `json:"source"`
	ElapsedMs float64         `json:"elapsed_ms"`
	Graph     json.RawMessage `json:"graph"`
}

func (s *Server) handleAggregate(ctx context.Context, w http.ResponseWriter, r *http.Request) (int, error) {
	var req AggregateRequest
	if err := decodeJSON(r, &req); err != nil {
		return http.StatusBadRequest, err
	}
	st, err := s.current()
	if err != nil {
		return http.StatusServiceUnavailable, err
	}
	tl := st.g.Timeline()
	iv1, err := req.Interval.interval(tl)
	if err != nil {
		return http.StatusBadRequest, err
	}
	kind, err := parseKind(req.Kind)
	if err != nil {
		return http.StatusBadRequest, err
	}
	ids, err := attrIDs(st.g, req.Attrs)
	if err != nil {
		return http.StatusBadRequest, err
	}

	binary := req.Op != "project"
	var iv2 timeline.Interval
	if binary {
		if iv2, err = req.Interval2.interval(tl); err != nil {
			return http.StatusBadRequest, err
		}
	} else if req.Interval2.From != "" || len(req.Interval2.Points) > 0 {
		return http.StatusBadRequest, fmt.Errorf("op %q takes a single interval", req.Op)
	}

	start := time.Now()
	var (
		ag  *agg.Graph
		src = materialize.Scratch
	)
	if req.Op == "union" && kind == agg.All {
		// Union + ALL is T-distributive (§4.3): answer through the
		// materialization catalog (cache → composed store → scratch).
		ag, src, err = st.cat.UnionAll(iv1.Union(iv2), ids...)
		if err != nil {
			return http.StatusBadRequest, err
		}
	} else {
		var v *ops.View
		switch req.Op {
		case "project":
			v = ops.Project(st.g, iv1)
		case "union":
			v = ops.Union(st.g, iv1, iv2)
		case "intersection":
			v = ops.Intersection(st.g, iv1, iv2)
		case "difference":
			v = ops.Difference(st.g, iv1, iv2)
		default:
			return http.StatusBadRequest, fmt.Errorf("unknown op %q (want project, union, intersection or difference)", req.Op)
		}
		sch, err := agg.NewSchema(st.g, ids...)
		if err != nil {
			return http.StatusBadRequest, err
		}
		if ag, err = agg.AggregateParallelCtx(ctx, v, sch, kind, clampWorkers(req.Workers)); err != nil {
			return statusForCtx(err), err
		}
	}
	raw, err := json.Marshal(ag)
	if err != nil {
		return http.StatusInternalServerError, err
	}
	return writeJSON(w, AggregateResponse{
		Source:    src.String(),
		ElapsedMs: float64(time.Since(start).Microseconds()) / 1000,
		Graph:     raw,
	})
}

// ExploreRequest asks for minimal/maximal interval pairs with at least K
// events (§3 exploration; Table 1 monotone cases use the same engine).
type ExploreRequest struct {
	// Event is stability, growth or shrinkage.
	Event string `json:"event"`
	// Semantics is union (minimal pairs) or intersection (maximal pairs).
	Semantics string `json:"semantics"`
	// Extend is old or new — which side of the pair grows.
	Extend string   `json:"extend"`
	K      int64    `json:"k"`
	Attrs  []string `json:"attrs"`
	// Kind is dist (default) or all.
	Kind string `json:"kind,omitempty"`
	// Result selects the measured quantity: edges (default) or nodes, or
	// one aggregate entity via NodeTuple / EdgeFrom+EdgeTo.
	Result    string   `json:"result,omitempty"`
	NodeTuple []string `json:"node_tuple,omitempty"`
	EdgeFrom  []string `json:"edge_from,omitempty"`
	EdgeTo    []string `json:"edge_to,omitempty"`
	// Workers bounds the fast path's parallel evaluator; 0 evaluates
	// serially, negative selects GOMAXPROCS.
	Workers int `json:"workers,omitempty"`
}

// ExplorePair is one reported interval pair.
type ExplorePair struct {
	Old    string `json:"old"`
	New    string `json:"new"`
	Result int64  `json:"result"`
}

// ExploreResponse lists the pairs found for threshold K together with the
// number of candidate evaluations the traversal performed.
type ExploreResponse struct {
	K           int64         `json:"k"`
	Pairs       []ExplorePair `json:"pairs"`
	Evaluations int           `json:"evaluations"`
	ElapsedMs   float64       `json:"elapsed_ms"`
}

func (s *Server) handleExplore(ctx context.Context, w http.ResponseWriter, r *http.Request) (int, error) {
	var req ExploreRequest
	if err := decodeJSON(r, &req); err != nil {
		return http.StatusBadRequest, err
	}
	st, err := s.current()
	if err != nil {
		return http.StatusServiceUnavailable, err
	}
	var event explore.Event
	switch req.Event {
	case "stability":
		event = evolution.Stability
	case "growth":
		event = evolution.Growth
	case "shrinkage":
		event = evolution.Shrinkage
	default:
		return http.StatusBadRequest, fmt.Errorf("unknown event %q (want stability, growth or shrinkage)", req.Event)
	}
	var sem explore.Semantics
	switch req.Semantics {
	case "", "union":
		sem = explore.UnionSemantics
	case "intersection":
		sem = explore.IntersectionSemantics
	default:
		return http.StatusBadRequest, fmt.Errorf("unknown semantics %q (want union or intersection)", req.Semantics)
	}
	var ext explore.Extend
	switch req.Extend {
	case "", "new":
		ext = explore.ExtendNew
	case "old":
		ext = explore.ExtendOld
	default:
		return http.StatusBadRequest, fmt.Errorf("unknown extend %q (want old or new)", req.Extend)
	}
	if req.K < 1 {
		return http.StatusBadRequest, fmt.Errorf("k must be >= 1, got %d", req.K)
	}
	kind, err := parseKind(req.Kind)
	if err != nil {
		return http.StatusBadRequest, err
	}
	ids, err := attrIDs(st.g, req.Attrs)
	if err != nil {
		return http.StatusBadRequest, err
	}
	sch, err := agg.NewSchema(st.g, ids...)
	if err != nil {
		return http.StatusBadRequest, err
	}
	var result explore.ResultFunc
	switch {
	case len(req.NodeTuple) > 0:
		if result, err = explore.NodeTuple(sch, req.NodeTuple...); err != nil {
			return http.StatusBadRequest, err
		}
	case len(req.EdgeFrom) > 0 || len(req.EdgeTo) > 0:
		if result, err = explore.EdgeTuple(sch, req.EdgeFrom, req.EdgeTo); err != nil {
			return http.StatusBadRequest, err
		}
	case req.Result == "" || req.Result == "edges":
		result = explore.TotalEdges
	case req.Result == "nodes":
		result = explore.TotalNodes
	default:
		return http.StatusBadRequest, fmt.Errorf("unknown result %q (want edges or nodes)", req.Result)
	}

	ex := &explore.Explorer{Graph: st.g, Schema: sch, Kind: kind, Result: result, Workers: clampWorkers(req.Workers)}
	start := time.Now()
	pairs, err := ex.ExploreCtx(ctx, event, sem, ext, req.K)
	if err != nil {
		return statusForCtx(err), err
	}
	resp := ExploreResponse{
		K:           req.K,
		Pairs:       make([]ExplorePair, len(pairs)),
		Evaluations: ex.Evaluations,
		ElapsedMs:   float64(time.Since(start).Microseconds()) / 1000,
	}
	for i, p := range pairs {
		resp.Pairs[i] = ExplorePair{Old: p.Old.String(), New: p.New.String(), Result: p.Result}
	}
	return writeJSON(w, resp)
}

// TGQLRequest runs one TGQL statement.
type TGQLRequest struct {
	Query string `json:"query"`
}

// TGQLResponse carries the rendered result plus structured payloads when
// the statement produced them.
type TGQLResponse struct {
	Text  string          `json:"text"`
	Graph json.RawMessage `json:"graph,omitempty"`
	Pairs []ExplorePair   `json:"pairs,omitempty"`
	K     int64           `json:"k,omitempty"`
}

func (s *Server) handleTGQL(ctx context.Context, w http.ResponseWriter, r *http.Request) (int, error) {
	var req TGQLRequest
	if err := decodeJSON(r, &req); err != nil {
		return http.StatusBadRequest, err
	}
	if req.Query == "" {
		return http.StatusBadRequest, fmt.Errorf("query required")
	}
	st, err := s.current()
	if err != nil {
		return http.StatusServiceUnavailable, err
	}
	res, err := tgql.ExecCtx(ctx, st.g, req.Query)
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return statusForCtx(err), err
		}
		return http.StatusBadRequest, err
	}
	resp := TGQLResponse{Text: res.String()}
	if res.Agg != nil {
		raw, mErr := json.Marshal(res.Agg)
		if mErr != nil {
			return http.StatusInternalServerError, mErr
		}
		resp.Graph = raw
	}
	if res.Pairs != nil {
		resp.K = res.K
		resp.Pairs = make([]ExplorePair, len(res.Pairs))
		for i, p := range res.Pairs {
			resp.Pairs[i] = ExplorePair{Old: p.Old.String(), New: p.New.String(), Result: p.Result}
		}
	}
	return writeJSON(w, resp)
}

// IngestNode is the wire form of one node in an ingested snapshot.
type IngestNode struct {
	Label   string            `json:"label"`
	Static  map[string]string `json:"static,omitempty"`
	Varying map[string]string `json:"varying,omitempty"`
}

// IngestEdge is one directed interaction in an ingested snapshot.
type IngestEdge struct {
	U string `json:"u"`
	V string `json:"v"`
}

// IngestRequest appends one time point to a stream-mode server.
type IngestRequest struct {
	Label string       `json:"label"`
	Nodes []IngestNode `json:"nodes"`
	Edges []IngestEdge `json:"edges"`
}

// IngestResponse reports the series length after the append.
type IngestResponse struct {
	Points int `json:"points"`
}

func (s *Server) handleIngest(ctx context.Context, w http.ResponseWriter, r *http.Request) (int, error) {
	if s.series == nil {
		return http.StatusConflict, fmt.Errorf("server runs in static mode; ingestion is disabled")
	}
	var req IngestRequest
	if err := decodeJSON(r, &req); err != nil {
		return http.StatusBadRequest, err
	}
	if req.Label == "" {
		return http.StatusBadRequest, fmt.Errorf("label required")
	}
	snap := stream.Snapshot{
		Nodes: make([]stream.NodeRecord, len(req.Nodes)),
		Edges: make([]stream.EdgeRecord, len(req.Edges)),
	}
	for i, n := range req.Nodes {
		snap.Nodes[i] = stream.NodeRecord{Label: n.Label, Static: n.Static, Varying: n.Varying}
	}
	for i, e := range req.Edges {
		snap.Edges[i] = stream.EdgeRecord{U: e.U, V: e.V}
	}
	if err := s.series.Append(req.Label, snap); err != nil {
		return http.StatusBadRequest, err
	}
	return writeJSON(w, IngestResponse{Points: s.series.Len()})
}
