package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/plan"
	"repro/internal/storage"
	"repro/internal/stream"
	"repro/internal/tgql"
)

// errNotReady is returned while a stream-mode server has no data yet.
var errNotReady = errors.New("server: no time points ingested yet")

// decodeJSON strictly decodes the request body into v, enforcing the
// configured body size limit. A body over the limit maps to a structured
// 413 with the limit surfaced in the message; any other decode failure is
// the client's fault (400).
func (s *Server) decodeJSON(w http.ResponseWriter, r *http.Request, v any) (int, error) {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds the %d-byte limit", mbe.Limit)
		}
		return http.StatusBadRequest, fmt.Errorf("bad request body: %w", err)
	}
	return 0, nil
}

// IntervalSpec selects a set of time points by label: either a contiguous
// range {"from": "t0", "to": "t2"} (to defaults to from, i.e. one point)
// or an explicit point set {"points": ["t0", "t2"]}.
type IntervalSpec struct {
	From   string   `json:"from,omitempty"`
	To     string   `json:"to,omitempty"`
	Points []string `json:"points,omitempty"`
}

// ref lowers the wire spec into the planner's symbolic interval ref;
// resolution against the timeline happens at plan compile.
func (sp IntervalSpec) ref() plan.IntervalRef {
	return plan.IntervalRef{From: sp.From, To: sp.To, Points: sp.Points}
}

// planEnv is the compile environment for queries against one serving
// snapshot: its graph and catalog, the request's workers budget, the
// server's plan cache (generation-keyed on the snapshot identity, so a
// stream-mode rebuild flushes it automatically), and the feedback store
// that adapts selections to observed cardinalities.
func (s *Server) planEnv(st *state, workers int) plan.Env {
	return plan.Env{Graph: st.g, Catalog: st.cat, Workers: workers, Cache: s.plans,
		Feedback: s.fback, History: s}
}

// asOfQuery appends the wire-level as_of shorthand to a TGQL statement as
// its AS OF clause, so both spellings share one grammar, one plan-cache
// keyspace and one error path (a statement that already carries AS OF plus
// the wire field is a duplicate-clause parse error).
func asOfQuery(query string, asOf int) string {
	if asOf <= 0 {
		return query
	}
	return fmt.Sprintf("%s AS OF %d", query, asOf)
}

// execStatus maps an execution error: context errors keep their transport
// mapping (504/499), engine errors are the client's fault (400).
func execStatus(err error) int {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return statusForCtx(err)
	}
	return http.StatusBadRequest
}

// AggregateRequest asks for the aggregate graph of a temporal operator
// applied to one or two intervals.
type AggregateRequest struct {
	// Op is one of project, union, intersection, difference.
	Op        string       `json:"op"`
	Interval  IntervalSpec `json:"interval"`
	Interval2 IntervalSpec `json:"interval2,omitempty"`
	Attrs     []string     `json:"attrs"`
	// Kind is dist (default) or all.
	Kind string `json:"kind,omitempty"`
	// Workers bounds the parallel aggregation; 0 selects GOMAXPROCS.
	Workers int `json:"workers,omitempty"`
	// AsOf evaluates the query against the graph as of this transaction
	// (the txn acknowledged by an earlier ingest); 0 is the live head.
	AsOf int `json:"as_of,omitempty"`
}

// AggregateResponse carries the aggregate graph and how it was derived.
type AggregateResponse struct {
	// Source is the materialization catalog's derivation (scratch, cached,
	// t-distributive, d-distributive).
	Source    string          `json:"source"`
	ElapsedMs float64         `json:"elapsed_ms"`
	Graph     json.RawMessage `json:"graph"`
}

func (s *Server) handleAggregate(ctx context.Context, w http.ResponseWriter, r *http.Request) (int, error) {
	var req AggregateRequest
	if status, err := s.decodeJSON(w, r, &req); err != nil {
		return status, err
	}
	st, err := s.current()
	if err != nil {
		return http.StatusServiceUnavailable, err
	}
	node := &plan.Aggregate{
		Op:    plan.TemporalOp{Op: req.Op, A: req.Interval.ref(), B: req.Interval2.ref()},
		Attrs: req.Attrs,
		Kind:  req.Kind,
		AsOf:  plan.TxnRef{Txn: req.AsOf},
	}
	p, err := plan.Compile(s.planEnv(st, req.Workers), node)
	if err != nil {
		return http.StatusBadRequest, err
	}
	start := time.Now()
	res, err := p.Execute(ctx)
	if err != nil {
		return execStatus(err), err
	}
	raw, err := json.Marshal(res.Agg)
	if err != nil {
		return http.StatusInternalServerError, err
	}
	return writeJSON(w, AggregateResponse{
		Source:    res.AggSource.String(),
		ElapsedMs: float64(time.Since(start).Microseconds()) / 1000,
		Graph:     raw,
	})
}

// ExploreRequest asks for minimal/maximal interval pairs with at least K
// events (§3 exploration; Table 1 monotone cases use the same engine).
type ExploreRequest struct {
	// Event is stability, growth or shrinkage.
	Event string `json:"event"`
	// Semantics is union (minimal pairs) or intersection (maximal pairs).
	Semantics string `json:"semantics"`
	// Extend is old or new — which side of the pair grows.
	Extend string   `json:"extend"`
	K      int64    `json:"k"`
	Attrs  []string `json:"attrs"`
	// Kind is dist (default) or all.
	Kind string `json:"kind,omitempty"`
	// Result selects the measured quantity: edges (default) or nodes, or
	// one aggregate entity via NodeTuple / EdgeFrom+EdgeTo.
	Result    string   `json:"result,omitempty"`
	NodeTuple []string `json:"node_tuple,omitempty"`
	EdgeFrom  []string `json:"edge_from,omitempty"`
	EdgeTo    []string `json:"edge_to,omitempty"`
	// Workers bounds the fast path's parallel evaluator; 0 evaluates
	// serially, negative selects GOMAXPROCS.
	Workers int `json:"workers,omitempty"`
	// AsOf evaluates the exploration against the graph as of this
	// transaction; 0 is the live head.
	AsOf int `json:"as_of,omitempty"`
}

// ExplorePair is one reported interval pair.
type ExplorePair struct {
	Old    string `json:"old"`
	New    string `json:"new"`
	Result int64  `json:"result"`
}

// ExploreResponse lists the pairs found for threshold K together with the
// number of candidate evaluations the traversal performed.
type ExploreResponse struct {
	K           int64         `json:"k"`
	Pairs       []ExplorePair `json:"pairs"`
	Evaluations int           `json:"evaluations"`
	ElapsedMs   float64       `json:"elapsed_ms"`
}

func (s *Server) handleExplore(ctx context.Context, w http.ResponseWriter, r *http.Request) (int, error) {
	var req ExploreRequest
	if status, err := s.decodeJSON(w, r, &req); err != nil {
		return status, err
	}
	st, err := s.current()
	if err != nil {
		return http.StatusServiceUnavailable, err
	}
	// The wire API requires an explicit threshold (TGQL's K AUTO
	// initialization is a REPL convenience).
	if req.K < 1 {
		return http.StatusBadRequest, fmt.Errorf("k must be >= 1, got %d", req.K)
	}
	node := &plan.Explore{
		Event:     req.Event,
		Attrs:     req.Attrs,
		Kind:      req.Kind,
		Semantics: req.Semantics,
		Extend:    req.Extend,
		Result:    req.Result,
		NodeTuple: req.NodeTuple,
		EdgeFrom:  req.EdgeFrom,
		EdgeTo:    req.EdgeTo,
		K:         req.K,
		AsOf:      plan.TxnRef{Txn: req.AsOf},
	}
	p, err := plan.Compile(s.planEnv(st, req.Workers), node)
	if err != nil {
		return http.StatusBadRequest, err
	}
	start := time.Now()
	res, err := p.Execute(ctx)
	if err != nil {
		return execStatus(err), err
	}
	resp := ExploreResponse{
		K:           res.K,
		Pairs:       make([]ExplorePair, len(res.Pairs)),
		Evaluations: res.Evaluations,
		ElapsedMs:   float64(time.Since(start).Microseconds()) / 1000,
	}
	for i, p := range res.Pairs {
		resp.Pairs[i] = ExplorePair{Old: p.Old.String(), New: p.New.String(), Result: p.Result}
	}
	return writeJSON(w, resp)
}

// TGQLRequest runs one TGQL statement.
type TGQLRequest struct {
	Query string `json:"query"`
	// AsOf is shorthand for suffixing the statement with AS OF <txn>.
	AsOf int `json:"as_of,omitempty"`
}

// TGQLResponse carries the rendered result plus structured payloads when
// the statement produced them.
type TGQLResponse struct {
	Text  string          `json:"text"`
	Graph json.RawMessage `json:"graph,omitempty"`
	Pairs []ExplorePair   `json:"pairs,omitempty"`
	K     int64           `json:"k,omitempty"`
}

func (s *Server) handleTGQL(ctx context.Context, w http.ResponseWriter, r *http.Request) (int, error) {
	var req TGQLRequest
	if status, err := s.decodeJSON(w, r, &req); err != nil {
		return status, err
	}
	if req.Query == "" {
		return http.StatusBadRequest, fmt.Errorf("query required")
	}
	if s.cfg.Partial && tgql.IsAnalytics(req.Query) {
		return http.StatusBadRequest, errPartialAnalytics
	}
	st, err := s.current()
	if err != nil {
		return http.StatusServiceUnavailable, err
	}
	res, err := tgql.ExecEnv(ctx, s.planEnv(st, 1), asOfQuery(req.Query, req.AsOf))
	if err != nil {
		return execStatus(err), err
	}
	resp := TGQLResponse{Text: res.String()}
	if res.Agg != nil {
		raw, mErr := json.Marshal(res.Agg)
		if mErr != nil {
			return http.StatusInternalServerError, mErr
		}
		resp.Graph = raw
	}
	if res.Pairs != nil {
		resp.K = res.K
		resp.Pairs = make([]ExplorePair, len(res.Pairs))
		for i, p := range res.Pairs {
			resp.Pairs[i] = ExplorePair{Old: p.Old.String(), New: p.New.String(), Result: p.Result}
		}
	}
	return writeJSON(w, resp)
}

// ExplainRequest asks for the physical plan of one TGQL statement without
// executing it. A leading EXPLAIN keyword in the query is accepted.
type ExplainRequest struct {
	Query string `json:"query"`
	// AsOf is shorthand for suffixing the statement with AS OF <txn>.
	AsOf int `json:"as_of,omitempty"`
}

// ExplainResponse carries the rendered plan tree: the canonical logical
// query, the selected operators, and their cost/engine attributes.
type ExplainResponse struct {
	Plan string `json:"plan"`
}

func (s *Server) handleExplain(ctx context.Context, w http.ResponseWriter, r *http.Request) (int, error) {
	var req ExplainRequest
	if status, err := s.decodeJSON(w, r, &req); err != nil {
		return status, err
	}
	if req.Query == "" {
		return http.StatusBadRequest, fmt.Errorf("query required")
	}
	if s.cfg.Partial && tgql.IsAnalytics(req.Query) {
		return http.StatusBadRequest, errPartialAnalytics
	}
	st, err := s.current()
	if err != nil {
		return http.StatusServiceUnavailable, err
	}
	p, err := tgql.PlanEnv(s.planEnv(st, 1), asOfQuery(req.Query, req.AsOf))
	if err != nil {
		return http.StatusBadRequest, err
	}
	return writeJSON(w, ExplainResponse{Plan: p.Explain()})
}

// IngestNode is the wire form of one node in an ingested snapshot.
type IngestNode struct {
	Label   string            `json:"label"`
	Static  map[string]string `json:"static,omitempty"`
	Varying map[string]string `json:"varying,omitempty"`
}

// IngestEdge is one directed interaction in an ingested snapshot.
type IngestEdge struct {
	U string `json:"u"`
	V string `json:"v"`
}

// IngestRequest appends one time point to a stream-mode server. Before,
// when set, names an existing time-point label the new point is inserted
// before in valid-time order — a retroactive (late-arriving) batch; the
// default is a tail append.
type IngestRequest struct {
	Label  string       `json:"label"`
	Before string       `json:"before,omitempty"`
	Nodes  []IngestNode `json:"nodes"`
	Edges  []IngestEdge `json:"edges"`
}

// IngestResponse reports the series length after the append, the serving
// generation the write is visible at, and the transaction sequence the
// write was assigned — the handle AS OF queries replay to. Visible >=
// Points means the point is already queryable; clients wanting a later
// batch can poll GET /readyz?gen=N.
type IngestResponse struct {
	Points  int `json:"points"`
	Visible int `json:"visible"`
	Txn     int `json:"txn"`
}

// applyIngest routes one batch into the series (durable mode goes through
// the WAL first), choosing the tail-append or retroactive-insert path.
func (s *Server) applyIngest(req IngestRequest, snap stream.Snapshot) error {
	if s.storage != nil {
		if req.Before != "" {
			_, err := s.storage.AppendAt(req.Label, snap, req.Before)
			return err
		}
		return s.storage.Append(req.Label, snap)
	}
	if req.Before != "" {
		_, err := s.series.AppendAt(req.Label, snap, req.Before)
		return err
	}
	return s.series.Append(req.Label, snap)
}

func (s *Server) handleIngest(ctx context.Context, w http.ResponseWriter, r *http.Request) (int, error) {
	if s.series == nil {
		return http.StatusConflict, fmt.Errorf("server runs in static mode; ingestion is disabled")
	}
	if s.role() == RoleReplica {
		return http.StatusConflict, fmt.Errorf("shard replica: ingestion is driven by WAL replication; write to the primary")
	}
	var req IngestRequest
	if status, err := s.decodeJSON(w, r, &req); err != nil {
		return status, err
	}
	if req.Label == "" {
		return http.StatusBadRequest, fmt.Errorf("label required")
	}
	snap := stream.Snapshot{
		Nodes: make([]stream.NodeRecord, len(req.Nodes)),
		Edges: make([]stream.EdgeRecord, len(req.Edges)),
	}
	for i, n := range req.Nodes {
		snap.Nodes[i] = stream.NodeRecord{Label: n.Label, Static: n.Static, Varying: n.Varying}
	}
	for i, e := range req.Edges {
		snap.Edges[i] = stream.EdgeRecord{U: e.U, V: e.V}
	}
	// Durable mode: the WAL append (and, under -fsync=always, the sync)
	// happens before the acknowledgement. A WAL failure is the server's
	// fault, not the client's.
	if err := s.applyIngest(req, snap); err != nil {
		if errors.Is(err, storage.ErrWAL) {
			return http.StatusInternalServerError, err
		}
		return http.StatusBadRequest, err
	}
	// Every ingest record creates exactly one time point, so the series
	// length doubles as the transaction sequence this write landed at.
	points := s.series.Len()
	// Fold the delta into the serving state inline so the acknowledgement
	// already carries the visible generation; the pending entry is recorded
	// first so the freshness histogram covers this very advance.
	s.trackVisibility(points)
	visible := 0
	if st, err := s.current(); err == nil {
		visible = st.gen
	} else {
		s.log.Warn("ingest accepted but serving state not advanced", "err", err)
	}
	return writeJSON(w, IngestResponse{Points: points, Visible: visible, Txn: points})
}
