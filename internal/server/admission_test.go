package server

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestAdmissionFastPath(t *testing.T) {
	a := newAdmission(4, 2)
	ctx := context.Background()
	for i := 0; i < 4; i++ {
		if err := a.acquire(ctx, 1); err != nil {
			t.Fatalf("acquire %d: %v", i, err)
		}
	}
	if got := a.used(); got != 4 {
		t.Fatalf("used = %d, want 4", got)
	}
	a.release(1)
	if got := a.used(); got != 3 {
		t.Fatalf("used after release = %d, want 3", got)
	}
}

func TestAdmissionOverflowSheds(t *testing.T) {
	a := newAdmission(1, 1)
	ctx := context.Background()
	if err := a.acquire(ctx, 1); err != nil {
		t.Fatal(err)
	}
	// One waiter fits in the queue.
	done := make(chan error, 1)
	go func() {
		done <- a.acquire(ctx, 1)
	}()
	waitForQueue(t, a, 1)
	// The next request overflows.
	if err := a.acquire(ctx, 1); err != ErrOverloaded {
		t.Fatalf("overflow acquire: got %v, want ErrOverloaded", err)
	}
	a.release(1)
	if err := <-done; err != nil {
		t.Fatalf("queued acquire: %v", err)
	}
	a.release(1)
}

func TestAdmissionQueuedDeadline(t *testing.T) {
	a := newAdmission(1, 4)
	if err := a.acquire(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := a.acquire(ctx, 1); err != context.DeadlineExceeded {
		t.Fatalf("queued acquire: got %v, want DeadlineExceeded", err)
	}
	if got := a.queued(); got != 0 {
		t.Fatalf("queue not cleaned up: %d waiters", got)
	}
	// The holder's release must not be consumed by the dead waiter.
	a.release(1)
	if err := a.acquire(context.Background(), 1); err != nil {
		t.Fatalf("acquire after cleanup: %v", err)
	}
	a.release(1)
}

func TestAdmissionFIFO(t *testing.T) {
	a := newAdmission(1, 8)
	if err := a.acquire(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	const n = 4
	order := make(chan int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := a.acquire(context.Background(), 1); err != nil {
				t.Errorf("waiter %d: %v", i, err)
				return
			}
			order <- i
			a.release(1)
		}(i)
		waitForQueue(t, a, i+1)
	}
	a.release(1)
	wg.Wait()
	close(order)
	prev := -1
	for i := range order {
		if i != prev+1 {
			t.Fatalf("waiters admitted out of FIFO order: got %d after %d", i, prev)
		}
		prev = i
	}
}

func TestAdmissionWeightClamp(t *testing.T) {
	a := newAdmission(2, 0)
	// A request heavier than capacity is clamped, not deadlocked.
	if err := a.acquire(context.Background(), 10); err != nil {
		t.Fatalf("oversized acquire: %v", err)
	}
	if got := a.used(); got != 2 {
		t.Fatalf("used = %d, want clamped 2", got)
	}
	a.release(10)
	if got := a.used(); got != 0 {
		t.Fatalf("used after release = %d, want 0", got)
	}
}

// waitForQueue polls until the wait queue reaches n (the acquire goroutine
// enqueues asynchronously).
func waitForQueue(t *testing.T, a *admission, n int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for a.queued() < n {
		if time.Now().After(deadline) {
			t.Fatalf("queue never reached %d (at %d)", n, a.queued())
		}
		time.Sleep(time.Millisecond)
	}
}
