package server

import (
	"context"
	"fmt"
	"net/http"
	"time"

	"repro/internal/analytics"
	"repro/internal/plan"
)

// This file serves the evolution-analytics statement family (EVENTS,
// PATHS, TREND) over dedicated JSON endpoints. The statements traverse the
// whole timeline by construction, so a daemon serving one time-range shard
// of a cluster (Config.Partial) rejects them up front with a typed 400 —
// a shard-local answer would be silently wrong; the router answers them
// from its mirror instead.

// errPartialAnalytics is the typed rejection every analytics entry point
// returns on a partial (time-range shard) daemon, mirroring the partial
// aggregate's as_of contract.
var errPartialAnalytics = fmt.Errorf(
	"analytics statements traverse the whole timeline and cannot be served by a time-range shard; query the router's mirror")

// rejectPartialAnalytics guards an analytics entry point on shard daemons.
func (s *Server) rejectPartialAnalytics() (int, error) {
	if s.cfg.Partial {
		return http.StatusBadRequest, errPartialAnalytics
	}
	return 0, nil
}

// EventsRequest asks for evolution-event classification of every attribute
// group between consecutive width-w windows (POST /v1/events).
type EventsRequest struct {
	Attrs []string `json:"attrs"`
	// Kind is dist (default) or all.
	Kind string `json:"kind,omitempty"`
	// Width is the tiling window width in time points; 0 selects 1.
	Width int `json:"width,omitempty"`
	// Min drops rows whose change magnitude (Gr+Shr) is below it.
	Min int64 `json:"min,omitempty"`
	// Workers is accepted for parity with the other endpoints (the events
	// engines are single-pass; the value only keys the plan cache).
	Workers int `json:"workers,omitempty"`
	// AsOf evaluates against the graph as of this transaction; 0 is head.
	AsOf int `json:"as_of,omitempty"`
}

// EventsResponse carries the classified rows.
type EventsResponse struct {
	ElapsedMs float64                 `json:"elapsed_ms"`
	Events    *analytics.EventsResult `json:"events"`
}

func (s *Server) handleEvents(ctx context.Context, w http.ResponseWriter, r *http.Request) (int, error) {
	if status, err := s.rejectPartialAnalytics(); err != nil {
		return status, err
	}
	var req EventsRequest
	if status, err := s.decodeJSON(w, r, &req); err != nil {
		return status, err
	}
	st, err := s.current()
	if err != nil {
		return http.StatusServiceUnavailable, err
	}
	node := &plan.Events{
		Kind:  req.Kind,
		Attrs: req.Attrs,
		Width: req.Width,
		Min:   req.Min,
		AsOf:  plan.TxnRef{Txn: req.AsOf},
	}
	p, err := plan.Compile(s.planEnv(st, req.Workers), node)
	if err != nil {
		return http.StatusBadRequest, err
	}
	start := time.Now()
	res, err := p.Execute(ctx)
	if err != nil {
		return execStatus(err), err
	}
	return writeJSON(w, EventsResponse{
		ElapsedMs: float64(time.Since(start).Microseconds()) / 1000,
		Events:    res.Events,
	})
}

// PathsRequest asks for time-respecting reachability (POST /v1/paths).
type PathsRequest struct {
	// Mode is earliest (default) or fastest.
	Mode string   `json:"mode,omitempty"`
	From []string `json:"from"`
	To   []string `json:"to"`
	// During restricts departures and traversal to a contiguous window;
	// absent means the whole timeline.
	During  IntervalSpec `json:"during,omitempty"`
	Workers int          `json:"workers,omitempty"`
	AsOf    int          `json:"as_of,omitempty"`
}

// PathsResponse carries per-target arrivals.
type PathsResponse struct {
	ElapsedMs float64                `json:"elapsed_ms"`
	Paths     *analytics.PathsResult `json:"paths"`
}

func (s *Server) handlePaths(ctx context.Context, w http.ResponseWriter, r *http.Request) (int, error) {
	if status, err := s.rejectPartialAnalytics(); err != nil {
		return status, err
	}
	var req PathsRequest
	if status, err := s.decodeJSON(w, r, &req); err != nil {
		return status, err
	}
	st, err := s.current()
	if err != nil {
		return http.StatusServiceUnavailable, err
	}
	node := &plan.Paths{
		Mode:   req.Mode,
		From:   req.From,
		To:     req.To,
		During: req.During.ref(),
		AsOf:   plan.TxnRef{Txn: req.AsOf},
	}
	p, err := plan.Compile(s.planEnv(st, req.Workers), node)
	if err != nil {
		return http.StatusBadRequest, err
	}
	start := time.Now()
	res, err := p.Execute(ctx)
	if err != nil {
		return execStatus(err), err
	}
	return writeJSON(w, PathsResponse{
		ElapsedMs: float64(time.Since(start).Microseconds()) / 1000,
		Paths:     res.Paths,
	})
}

// TrendRequest asks for per-group sliding-window appearance series
// (POST /v1/trend).
type TrendRequest struct {
	Attrs []string `json:"attrs"`
	// Kind is dist (default) or all.
	Kind string `json:"kind,omitempty"`
	// Width is the sliding window width in time points; 0 selects 1.
	Width   int `json:"width,omitempty"`
	Workers int `json:"workers,omitempty"`
	AsOf    int `json:"as_of,omitempty"`
}

// TrendResponse carries the per-group series.
type TrendResponse struct {
	ElapsedMs float64                `json:"elapsed_ms"`
	Trend     *analytics.TrendResult `json:"trend"`
}

func (s *Server) handleTrend(ctx context.Context, w http.ResponseWriter, r *http.Request) (int, error) {
	if status, err := s.rejectPartialAnalytics(); err != nil {
		return status, err
	}
	var req TrendRequest
	if status, err := s.decodeJSON(w, r, &req); err != nil {
		return status, err
	}
	st, err := s.current()
	if err != nil {
		return http.StatusServiceUnavailable, err
	}
	node := &plan.Trend{
		Kind:  req.Kind,
		Attrs: req.Attrs,
		Width: req.Width,
		AsOf:  plan.TxnRef{Txn: req.AsOf},
	}
	p, err := plan.Compile(s.planEnv(st, req.Workers), node)
	if err != nil {
		return http.StatusBadRequest, err
	}
	start := time.Now()
	res, err := p.Execute(ctx)
	if err != nil {
		return execStatus(err), err
	}
	return writeJSON(w, TrendResponse{
		ElapsedMs: float64(time.Since(start).Microseconds()) / 1000,
		Trend:     res.Trend,
	})
}
