package server

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/storage"
	"repro/internal/stream"
)

// The server-level time-travel acceptance: every response captured LIVE
// right after transaction n was acknowledged must be reproduced
// byte-identically later by the same query AS OF n — across tail appends,
// retroactive inserts and (in the storage-backed variant) checkpoints.

// tgqlAt posts one TGQL query with an as_of pin and returns the response
// text and graph payload.
func tgqlAt(t *testing.T, base, query string, asOf int) (string, []byte) {
	t.Helper()
	code, data := postJSON(t, base+"/v1/tgql", TGQLRequest{Query: query, AsOf: asOf})
	if code != 200 {
		t.Fatalf("tgql %q as_of %d = %d: %s", query, asOf, code, data)
	}
	var tr TGQLResponse
	if err := json.Unmarshal(data, &tr); err != nil {
		t.Fatal(err)
	}
	return tr.Text, tr.Graph
}

func ingestAck(t *testing.T, base string, req IngestRequest) IngestResponse {
	t.Helper()
	code, data := postJSON(t, base+"/v1/ingest", req)
	if code != 200 {
		t.Fatalf("ingest %s = %d: %s", req.Label, code, data)
	}
	var ir IngestResponse
	if err := json.Unmarshal(data, &ir); err != nil {
		t.Fatal(err)
	}
	return ir
}

// asOfBatches is a four-batch history whose last record is retroactive:
// t0, t1, t2 tail appends, then t0b spliced before t1.
func asOfBatches() []IngestRequest {
	n := func(label, gender, pubs string) IngestNode {
		return IngestNode{Label: label,
			Static:  map[string]string{"gender": gender},
			Varying: map[string]string{"publications": pubs}}
	}
	return []IngestRequest{
		{Label: "t0", Nodes: []IngestNode{n("u1", "m", "3"), n("u2", "f", "1")},
			Edges: []IngestEdge{{U: "u1", V: "u2"}}},
		{Label: "t1", Nodes: []IngestNode{n("u1", "m", "1"), n("u2", "f", "1"), n("u3", "f", "2")},
			Edges: []IngestEdge{{U: "u1", V: "u2"}, {U: "u2", V: "u3"}}},
		{Label: "t2", Nodes: []IngestNode{n("u2", "f", "2"), n("u3", "f", "1")},
			Edges: []IngestEdge{{U: "u2", V: "u3"}}},
		{Label: "t0b", Before: "t1", Nodes: []IngestNode{n("u1", "m", "2"), n("u2", "f", "1")},
			Edges: []IngestEdge{{U: "u1", V: "u2"}}},
	}
}

// runAsOfLifecycle drives the batches through a server, capturing the live
// render after each ack, then replays every capture through AS OF.
func runAsOfLifecycle(t *testing.T, base string) {
	t.Helper()
	const q = "AGG DIST gender ON UNION(t0, t0)"
	type capture struct {
		txn   int
		text  string
		graph []byte
	}
	var caps []capture
	for i, req := range asOfBatches() {
		ir := ingestAck(t, base, req)
		if ir.Txn != i+1 {
			t.Fatalf("ingest %s: ack txn = %d, want %d", req.Label, ir.Txn, i+1)
		}
		if ir.Points != i+1 {
			t.Fatalf("ingest %s: points = %d, want %d", req.Label, ir.Points, i+1)
		}
		text, graph := tgqlAt(t, base, q, 0)
		caps = append(caps, capture{ir.Txn, text, graph})
	}

	// Retroactive visibility: the full-interval aggregate now spans four
	// points and differs from the pre-retro head.
	headText, _ := tgqlAt(t, base, "AGG ALL gender ON PROJECT t0..t2", 0)
	preText, _ := tgqlAt(t, base, "AGG ALL gender ON PROJECT t0..t2", 3)
	if headText == preText {
		t.Fatalf("retroactive ingest is invisible: head render == AS OF 3 render:\n%s", headText)
	}

	for _, c := range caps {
		text, graph := tgqlAt(t, base, q, c.txn)
		if text != c.text {
			t.Errorf("AS OF %d text:\n%s\nwant live capture:\n%s", c.txn, text, c.text)
		}
		if !bytes.Equal(graph, c.graph) {
			t.Errorf("AS OF %d graph diverges from live capture:\n%s\nvs\n%s", c.txn, graph, c.graph)
		}
	}

	// The aggregate endpoint accepts the same pin.
	code, data := postJSON(t, base+"/v1/aggregate", AggregateRequest{
		Op: "union", Interval: IntervalSpec{From: "t0"}, Interval2: IntervalSpec{From: "t0"},
		Attrs: []string{"gender"}, Kind: "dist", AsOf: 1,
	})
	if code != 200 {
		t.Fatalf("aggregate as_of 1 = %d: %s", code, data)
	}

	// Out-of-range and malformed pins are client errors with positions.
	code, data = postJSON(t, base+"/v1/tgql", TGQLRequest{Query: q, AsOf: 99})
	if code != 400 {
		t.Fatalf("as_of beyond head = %d: %s", code, data)
	}
	if !strings.Contains(string(data), "AS OF 99") {
		t.Errorf("beyond-head error does not name the transaction: %s", data)
	}
	// Explain travels too: the plan must carry the clause.
	code, data = postJSON(t, base+"/v1/explain", ExplainRequest{Query: q, AsOf: 2})
	if code != 200 {
		t.Fatalf("explain as_of = %d: %s", code, data)
	}
	if !strings.Contains(string(data), "AS OF 2") {
		t.Errorf("explain output does not render the AS OF clause: %s", data)
	}
}

func TestAsOfLifecycleStream(t *testing.T) {
	series := stream.New(
		core.AttrSpec{Name: "gender", Kind: core.Static},
		core.AttrSpec{Name: "publications", Kind: core.TimeVarying},
	)
	s, err := New(Config{Series: series, Logger: quietLogger()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	runAsOfLifecycle(t, ts.URL)
}

func TestAsOfLifecycleStorage(t *testing.T) {
	dir := t.TempDir()
	eng, err := storage.Open(dir, durableAttrs(), storage.Options{
		Fsync:             storage.FsyncAlways,
		CheckpointRecords: -1,
		Logger:            quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Storage: eng, Logger: quietLogger()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	runAsOfLifecycle(t, ts.URL)

	// Capture the per-txn answers, then crash (no Close) and reopen: every
	// AS OF answer must survive recovery byte-identically — including past
	// a checkpoint taken on the recovered engine.
	const q = "AGG DIST gender ON UNION(t0, t0)"
	type capture struct {
		text  string
		graph []byte
	}
	var caps []capture
	for txn := 1; txn <= 4; txn++ {
		text, graph := tgqlAt(t, ts.URL, q, txn)
		caps = append(caps, capture{text, graph})
	}
	ts.Close()

	eng2, err := storage.Open(dir, durableAttrs(), storage.Options{Logger: quietLogger()})
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	defer eng2.Close()
	if got := eng2.TxnSeq(); got != 4 {
		t.Fatalf("recovered txn seq = %d, want 4", got)
	}
	if err := eng2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	s2, err := New(Config{Storage: eng2, Logger: quietLogger()})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	for i, c := range caps {
		text, graph := tgqlAt(t, ts2.URL, q, i+1)
		if text != c.text || !bytes.Equal(graph, c.graph) {
			t.Errorf("AS OF %d diverged across crash+checkpoint:\n%s\nvs\n%s", i+1, text, c.text)
		}
	}

	// The transaction watermark surfaces on /v1/status and /metrics.
	code, data := get(t, ts2.URL+"/v1/status")
	if code != 200 {
		t.Fatalf("status = %d", code)
	}
	var sr StatusResponse
	if err := json.Unmarshal(data, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Txn != 4 {
		t.Errorf("status txn = %d, want 4", sr.Txn)
	}
	code, data = get(t, ts2.URL+"/metrics")
	if code != 200 {
		t.Fatalf("metrics = %d", code)
	}
	if !strings.Contains(string(data), "graphtempod_storage_txn_seq 4") {
		t.Errorf("metrics missing txn seq gauge:\n%s", data)
	}
	for _, name := range []string{"graphtempod_history_cache_entries", "graphtempod_catalog_retro_applies_total"} {
		if !strings.Contains(string(data), name) {
			t.Errorf("metrics missing %s", name)
		}
	}
}

// TestAsOfStaticModeRejected: a static dataset has no transaction log;
// explicit pins are 400s, pin 0 (the head) serves normally.
func TestAsOfStaticModeRejected(t *testing.T) {
	s, err := New(Config{Graph: core.PaperExample(), Logger: quietLogger()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	code, data := postJSON(t, ts.URL+"/v1/tgql", TGQLRequest{Query: "AGG DIST gender ON POINT t0", AsOf: 1})
	if code != 400 || !strings.Contains(string(data), "transaction log") {
		t.Fatalf("static as_of = %d: %s", code, data)
	}
	if code, _ := postJSON(t, ts.URL+"/v1/tgql", TGQLRequest{Query: "AGG DIST gender ON POINT t0"}); code != 200 {
		t.Fatalf("static head query = %d", code)
	}
	// VALID DURING still works: it windows the live graph.
	code, data = postJSON(t, ts.URL+"/v1/tgql", TGQLRequest{
		Query: "AGG DIST gender ON POINT t1 VALID DURING t1..t2",
	})
	if code != 200 {
		t.Fatalf("static VALID DURING = %d: %s", code, data)
	}
}

// TestRetroIngestReaggregates: after a retroactive batch, interval
// aggregates spanning the insert match a from-scratch server fed the same
// four points in valid-time order.
func TestRetroIngestReaggregates(t *testing.T) {
	series := stream.New(
		core.AttrSpec{Name: "gender", Kind: core.Static},
		core.AttrSpec{Name: "publications", Kind: core.TimeVarying},
	)
	s, err := New(Config{Series: series, Logger: quietLogger()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	for _, req := range asOfBatches() {
		ingestAck(t, ts.URL, req)
	}

	// Reference: the same history ingested in valid-time order.
	ref := stream.New(series.Attrs()...)
	sref, err := New(Config{Series: ref, Logger: quietLogger()})
	if err != nil {
		t.Fatal(err)
	}
	tsRef := httptest.NewServer(sref.Handler())
	defer tsRef.Close()
	batches := asOfBatches()
	for _, i := range []int{0, 3, 1, 2} {
		req := batches[i]
		req.Before = ""
		ingestAck(t, tsRef.URL, req)
	}

	for _, q := range []string{
		"AGG ALL gender ON PROJECT t0..t2",
		"AGG DIST gender ON UNION(t0b, t2)",
		"AGG ALL gender, publications ON INTERSECT(t0, t0b)",
		"EVOLVE DIST gender FROM t0 TO t0b",
	} {
		gotText, gotGraph := tgqlAt(t, ts.URL, q, 0)
		wantText, wantGraph := tgqlAt(t, tsRef.URL, q, 0)
		if gotText != wantText || !bytes.Equal(gotGraph, wantGraph) {
			t.Errorf("%s after retro ingest:\n%s\nwant (in-order ingest):\n%s", q, gotText, wantText)
		}
	}
}
