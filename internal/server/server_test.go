package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"regexp"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/evolution"
	"repro/internal/explore"
	"repro/internal/ops"
	"repro/internal/plan"
	"repro/internal/stream"
)

func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// newStaticServer serves the paper's running example in static mode.
func newStaticServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(Config{Graph: core.PaperExample(), Logger: quietLogger()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// postJSON posts body as JSON and returns the status and response bytes.
func postJSON(t *testing.T, url string, body any, header ...string) (int, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for i := 0; i+1 < len(header); i += 2 {
		req.Header.Set(header[i], header[i+1])
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

func TestHealthAndReady(t *testing.T) {
	s, ts := newStaticServer(t)
	if code, _ := get(t, ts.URL+"/healthz"); code != 200 {
		t.Fatalf("healthz = %d", code)
	}
	if code, _ := get(t, ts.URL+"/readyz"); code != 200 {
		t.Fatalf("readyz = %d", code)
	}
	s.BeginDrain()
	if code, _ := get(t, ts.URL+"/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("draining readyz = %d, want 503", code)
	}
	// healthz keeps answering during the drain (the process is alive).
	if code, _ := get(t, ts.URL+"/healthz"); code != 200 {
		t.Fatalf("draining healthz = %d", code)
	}
}

// TestAggregateMatchesFacade is the acceptance criterion: the server's
// aggregate graphs byte-match the library facade on the running example,
// on both the catalog path (union+ALL) and the scratch path.
func TestAggregateMatchesFacade(t *testing.T) {
	_, ts := newStaticServer(t)
	g := core.PaperExample()
	tl := g.Timeline()
	sch, err := agg.ByName(g, "gender")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		req  AggregateRequest
		want *agg.Graph
	}{
		{"union-all", AggregateRequest{Op: "union", Interval: IntervalSpec{From: "t0"}, Interval2: IntervalSpec{From: "t1"}, Attrs: []string{"gender"}, Kind: "all"},
			agg.Aggregate(ops.Union(g, tl.Point(0), tl.Point(1)), sch, agg.All)},
		{"union-dist", AggregateRequest{Op: "union", Interval: IntervalSpec{From: "t0"}, Interval2: IntervalSpec{From: "t1"}, Attrs: []string{"gender"}, Kind: "dist"},
			agg.Aggregate(ops.Union(g, tl.Point(0), tl.Point(1)), sch, agg.Distinct)},
		{"project-range", AggregateRequest{Op: "project", Interval: IntervalSpec{From: "t0", To: "t1"}, Attrs: []string{"gender"}},
			agg.Aggregate(ops.Project(g, tl.Range(0, 1)), sch, agg.Distinct)},
		{"intersection", AggregateRequest{Op: "intersection", Interval: IntervalSpec{From: "t0"}, Interval2: IntervalSpec{From: "t2"}, Attrs: []string{"gender"}},
			agg.Aggregate(ops.Intersection(g, tl.Point(0), tl.Point(2)), sch, agg.Distinct)},
		{"difference", AggregateRequest{Op: "difference", Interval: IntervalSpec{From: "t1"}, Interval2: IntervalSpec{From: "t0"}, Attrs: []string{"gender"}},
			agg.Aggregate(ops.Difference(g, tl.Point(1), tl.Point(0)), sch, agg.Distinct)},
	}
	for _, tc := range cases {
		code, data := postJSON(t, ts.URL+"/v1/aggregate", tc.req)
		if code != 200 {
			t.Fatalf("%s: status %d: %s", tc.name, code, data)
		}
		var resp AggregateResponse
		if err := json.Unmarshal(data, &resp); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		want, err := json.Marshal(tc.want)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(resp.Graph, want) {
			t.Fatalf("%s: server graph %s\nfacade %s", tc.name, resp.Graph, want)
		}
	}
}

// TestAggregateCatalogSources checks that repeating a union+ALL request is
// answered from the cache and that materializing flips the source to
// t-distributive composition.
func TestAggregateCatalogSources(t *testing.T) {
	s, ts := newStaticServer(t)
	req := AggregateRequest{Op: "union", Interval: IntervalSpec{From: "t0"}, Interval2: IntervalSpec{From: "t1"}, Attrs: []string{"gender"}, Kind: "all"}
	src := func() string {
		code, data := postJSON(t, ts.URL+"/v1/aggregate", req)
		if code != 200 {
			t.Fatalf("status %d: %s", code, data)
		}
		var resp AggregateResponse
		if err := json.Unmarshal(data, &resp); err != nil {
			t.Fatal(err)
		}
		return resp.Source
	}
	if got := src(); got != "scratch" {
		t.Fatalf("first answer source = %q, want scratch", got)
	}
	if got := src(); got != "cached" {
		t.Fatalf("second answer source = %q, want cached", got)
	}
	// Materialize the per-point store, then a fresh interval composes.
	gid, _ := s.cur.Load().g.AttrByName("gender")
	if _, err := s.cur.Load().cat.Materialize(gid); err != nil {
		t.Fatal(err)
	}
	req.Interval2 = IntervalSpec{From: "t2"}
	if got := src(); got != "t-distributive" {
		t.Fatalf("post-materialization source = %q, want t-distributive", got)
	}
}

func TestExploreMatchesEngine(t *testing.T) {
	_, ts := newStaticServer(t)
	g := core.PaperExample()
	sch, err := agg.ByName(g, "gender")
	if err != nil {
		t.Fatal(err)
	}
	ex := &explore.Explorer{Graph: g, Schema: sch, Kind: agg.Distinct, Result: explore.TotalEdges}
	want := ex.Explore(evolution.Stability, explore.UnionSemantics, explore.ExtendNew, 2)

	code, data := postJSON(t, ts.URL+"/v1/explore", ExploreRequest{
		Event: "stability", Semantics: "union", Extend: "new", K: 2, Attrs: []string{"gender"},
	})
	if code != 200 {
		t.Fatalf("status %d: %s", code, data)
	}
	var resp ExploreResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Pairs) != len(want) {
		t.Fatalf("got %d pairs, want %d: %s", len(resp.Pairs), len(want), data)
	}
	for i, p := range want {
		if resp.Pairs[i].Old != p.Old.String() || resp.Pairs[i].New != p.New.String() || resp.Pairs[i].Result != p.Result {
			t.Fatalf("pair %d = %+v, want %v", i, resp.Pairs[i], p)
		}
	}
	if resp.Evaluations == 0 {
		t.Fatal("no evaluations reported")
	}
}

func TestTGQLEndpoint(t *testing.T) {
	_, ts := newStaticServer(t)
	g := core.PaperExample()
	code, data := postJSON(t, ts.URL+"/v1/tgql", TGQLRequest{Query: "AGG DIST gender ON UNION(t0, t1)"})
	if code != 200 {
		t.Fatalf("status %d: %s", code, data)
	}
	var resp TGQLResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		t.Fatal(err)
	}
	sch, _ := agg.ByName(g, "gender")
	want, _ := json.Marshal(agg.Aggregate(ops.Union(g, g.Timeline().Point(0), g.Timeline().Point(1)), sch, agg.Distinct))
	if !bytes.Equal(resp.Graph, want) {
		t.Fatalf("tgql graph %s, want %s", resp.Graph, want)
	}
	if resp.Text == "" {
		t.Fatal("empty rendered text")
	}

	// Parse errors map to 400 with the error envelope.
	code, data = postJSON(t, ts.URL+"/v1/tgql", TGQLRequest{Query: "AGG NONSENSE"})
	if code != http.StatusBadRequest {
		t.Fatalf("parse error status = %d: %s", code, data)
	}
	var eb errorBody
	if err := json.Unmarshal(data, &eb); err != nil || eb.Error.Code == "" || eb.Error.Message == "" {
		t.Fatalf("malformed error envelope: %s", data)
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newStaticServer(t)
	cases := []struct {
		name string
		body any
	}{
		{"unknown-op", AggregateRequest{Op: "median", Interval: IntervalSpec{From: "t0"}, Interval2: IntervalSpec{From: "t1"}, Attrs: []string{"gender"}}},
		{"unknown-attr", AggregateRequest{Op: "union", Interval: IntervalSpec{From: "t0"}, Interval2: IntervalSpec{From: "t1"}, Attrs: []string{"salary"}}},
		{"unknown-point", AggregateRequest{Op: "union", Interval: IntervalSpec{From: "t9"}, Interval2: IntervalSpec{From: "t1"}, Attrs: []string{"gender"}}},
		{"bad-kind", AggregateRequest{Op: "union", Interval: IntervalSpec{From: "t0"}, Interval2: IntervalSpec{From: "t1"}, Attrs: []string{"gender"}, Kind: "most"}},
		{"missing-interval", AggregateRequest{Op: "union", Attrs: []string{"gender"}}},
		{"bad-k", ExploreRequest{Event: "stability", K: 0, Attrs: []string{"gender"}}},
		{"bad-event", ExploreRequest{Event: "implosion", K: 1, Attrs: []string{"gender"}}},
	}
	for _, tc := range cases {
		url := ts.URL + "/v1/aggregate"
		if _, isExplore := tc.body.(ExploreRequest); isExplore {
			url = ts.URL + "/v1/explore"
		}
		code, data := postJSON(t, url, tc.body)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400: %s", tc.name, code, data)
		}
		var eb errorBody
		if err := json.Unmarshal(data, &eb); err != nil || eb.Error.Code == "" || eb.Error.Message == "" {
			t.Errorf("%s: malformed error envelope: %s", tc.name, data)
		}
	}
}

func TestIngestStaticModeConflicts(t *testing.T) {
	_, ts := newStaticServer(t)
	code, data := postJSON(t, ts.URL+"/v1/ingest", IngestRequest{Label: "t3"})
	if code != http.StatusConflict {
		t.Fatalf("static ingest = %d, want 409: %s", code, data)
	}
}

// TestStreamModeLifecycle drives a stream-mode server from empty through
// ingestion: readyz flips to ready, queries see each new point, and the
// served aggregate byte-matches the facade on the materialized series.
func TestStreamModeLifecycle(t *testing.T) {
	series := stream.New(
		core.AttrSpec{Name: "gender", Kind: core.Static},
		core.AttrSpec{Name: "publications", Kind: core.TimeVarying},
	)
	s, err := New(Config{Series: series, Logger: quietLogger()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if code, _ := get(t, ts.URL+"/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("empty readyz = %d, want 503", code)
	}
	code, data := postJSON(t, ts.URL+"/v1/aggregate", AggregateRequest{Op: "project", Interval: IntervalSpec{From: "t0"}, Attrs: []string{"gender"}})
	if code != http.StatusServiceUnavailable {
		t.Fatalf("empty aggregate = %d, want 503: %s", code, data)
	}

	snaps := []IngestRequest{
		{Label: "t0",
			Nodes: []IngestNode{
				{Label: "u1", Static: map[string]string{"gender": "m"}, Varying: map[string]string{"publications": "3"}},
				{Label: "u2", Static: map[string]string{"gender": "f"}, Varying: map[string]string{"publications": "1"}},
			},
			Edges: []IngestEdge{{U: "u1", V: "u2"}}},
		{Label: "t1",
			Nodes: []IngestNode{
				{Label: "u1", Static: map[string]string{"gender": "m"}, Varying: map[string]string{"publications": "1"}},
				{Label: "u2", Static: map[string]string{"gender": "f"}, Varying: map[string]string{"publications": "1"}},
				{Label: "u3", Static: map[string]string{"gender": "f"}, Varying: map[string]string{"publications": "2"}},
			},
			Edges: []IngestEdge{{U: "u1", V: "u2"}, {U: "u2", V: "u3"}}},
	}
	for i, snap := range snaps {
		code, data := postJSON(t, ts.URL+"/v1/ingest", snap)
		if code != 200 {
			t.Fatalf("ingest %s: %d: %s", snap.Label, code, data)
		}
		var ir IngestResponse
		if err := json.Unmarshal(data, &ir); err != nil {
			t.Fatal(err)
		}
		if ir.Points != i+1 {
			t.Fatalf("ingest %s: points = %d, want %d", snap.Label, ir.Points, i+1)
		}
	}
	if code, _ := get(t, ts.URL+"/readyz"); code != 200 {
		t.Fatalf("readyz after ingest = %d", code)
	}

	code, data = postJSON(t, ts.URL+"/v1/aggregate", AggregateRequest{
		Op: "union", Interval: IntervalSpec{From: "t0"}, Interval2: IntervalSpec{From: "t1"},
		Attrs: []string{"gender"}, Kind: "all",
	})
	if code != 200 {
		t.Fatalf("stream aggregate = %d: %s", code, data)
	}
	var resp AggregateResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		t.Fatal(err)
	}
	g, err := series.Graph()
	if err != nil {
		t.Fatal(err)
	}
	sch, _ := agg.ByName(g, "gender")
	want, _ := json.Marshal(agg.Aggregate(ops.Union(g, g.Timeline().Point(0), g.Timeline().Point(1)), sch, agg.All))
	if !bytes.Equal(resp.Graph, want) {
		t.Fatalf("stream graph %s, want %s", resp.Graph, want)
	}

	// Duplicate label is a client error.
	if code, _ := postJSON(t, ts.URL+"/v1/ingest", snaps[0]); code != http.StatusBadRequest {
		t.Fatalf("duplicate ingest = %d, want 400", code)
	}
}

// TestOverloadSheds fills the admission semaphore and checks that the
// excess request is shed with 429 + Retry-After, and that a queued request
// whose deadline expires maps to 504.
func TestOverloadSheds(t *testing.T) {
	s, err := New(Config{Graph: core.PaperExample(), MaxInflight: 1, MaxQueue: 1, Logger: quietLogger()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Occupy the whole capacity from the outside.
	if err := s.adm.acquire(context.Background(), 1); err != nil {
		t.Fatal(err)
	}

	req := AggregateRequest{Op: "union", Interval: IntervalSpec{From: "t0"}, Interval2: IntervalSpec{From: "t1"}, Attrs: []string{"gender"}}

	// First request fills the queue and times out at its deadline → 504.
	type result struct {
		code int
		data []byte
	}
	queued := make(chan result, 1)
	go func() {
		code, data := postJSON(t, ts.URL+"/v1/aggregate", req, "X-Deadline-Ms", "300")
		queued <- result{code, data}
	}()
	waitForQueue(t, s.adm, 1)

	// Second request overflows the queue → 429 with Retry-After.
	buf, _ := json.Marshal(req)
	hr, err := http.Post(ts.URL+"/v1/aggregate", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, hr.Body)
	hr.Body.Close()
	if hr.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow status = %d, want 429", hr.StatusCode)
	}
	if hr.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	if r := <-queued; r.code != http.StatusGatewayTimeout {
		t.Fatalf("queued deadline status = %d, want 504: %s", r.code, r.data)
	}

	// Capacity released: requests flow again.
	s.adm.release(1)
	if code, data := postJSON(t, ts.URL+"/v1/aggregate", req); code != 200 {
		t.Fatalf("after release: %d: %s", code, data)
	}

	// The shed and 504 are visible in the metrics.
	_, metricsBody := get(t, ts.URL+"/metrics")
	for _, want := range []string{
		`graphtempod_shed_total{endpoint="aggregate"} 1`,
		`graphtempod_requests_total{code="429",endpoint="aggregate"} 1`,
		`graphtempod_requests_total{code="504",endpoint="aggregate"} 1`,
	} {
		if !strings.Contains(string(metricsBody), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestDeadlinePropagation checks that an already-expired client deadline
// aborts the engine call and maps to 504.
func TestDeadlinePropagation(t *testing.T) {
	s, err := New(Config{Graph: core.PaperExample(), RequestTimeout: time.Nanosecond, Logger: quietLogger()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	code, data := postJSON(t, ts.URL+"/v1/aggregate", AggregateRequest{
		Op: "union", Interval: IntervalSpec{From: "t0"}, Interval2: IntervalSpec{From: "t1"}, Attrs: []string{"gender"}, Kind: "dist",
	})
	if code != http.StatusGatewayTimeout {
		t.Fatalf("expired deadline status = %d, want 504: %s", code, data)
	}
	// TGQL statements honor the same deadline (not reported as a 400
	// statement error).
	code, data = postJSON(t, ts.URL+"/v1/tgql", TGQLRequest{Query: "EXPLORE STABILITY BY gender K 2"})
	if code != http.StatusGatewayTimeout {
		t.Fatalf("expired tgql deadline status = %d, want 504: %s", code, data)
	}
}

// TestWorkersClamped checks that a client cannot dictate engine
// parallelism: an absurd workers value is capped at GOMAXPROCS (the
// engines allocate per-worker state, so honoring it verbatim would let a
// single request exhaust memory), and the capped request still answers
// correctly.
func TestWorkersClamped(t *testing.T) {
	if got, want := plan.ClampWorkers(1<<30), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("ClampWorkers(1<<30) = %d, want %d", got, want)
	}
	for _, n := range []int{-1, 0, 1} {
		if got := plan.ClampWorkers(n); got != n {
			t.Fatalf("ClampWorkers(%d) = %d, want unchanged", n, got)
		}
	}

	_, ts := newStaticServer(t)
	code, data := postJSON(t, ts.URL+"/v1/aggregate", AggregateRequest{
		Op: "union", Interval: IntervalSpec{From: "t0"}, Interval2: IntervalSpec{From: "t1"},
		Attrs: []string{"gender"}, Workers: 1 << 30,
	})
	if code != 200 {
		t.Fatalf("clamped aggregate = %d: %s", code, data)
	}
	code, data = postJSON(t, ts.URL+"/v1/explore", ExploreRequest{
		Event: "stability", K: 2, Attrs: []string{"gender"}, Workers: 1 << 30,
	})
	if code != 200 {
		t.Fatalf("clamped explore = %d: %s", code, data)
	}
	var resp ExploreResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Pairs) == 0 {
		t.Fatal("clamped explore found no pairs")
	}
}

// TestPanicIsolation checks the recovery middleware: a panicking handler
// yields a 500 JSON envelope and moves the panic counter, without killing
// the server.
func TestPanicIsolation(t *testing.T) {
	s, err := New(Config{Graph: core.PaperExample(), Logger: quietLogger()})
	if err != nil {
		t.Fatal(err)
	}
	h := s.api("aggregate", func(ctx context.Context, w http.ResponseWriter, r *http.Request) (int, error) {
		panic("boom")
	})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/aggregate", strings.NewReader("{}")))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panic status = %d, want 500", rec.Code)
	}
	var eb errorBody
	if err := json.Unmarshal(rec.Body.Bytes(), &eb); err != nil || eb.Error.Code == "" || eb.Error.Message == "" {
		t.Fatalf("malformed panic envelope: %s", rec.Body.Bytes())
	}
	if got := s.panics.Value(); got != 1 {
		t.Fatalf("panics counter = %d, want 1", got)
	}
}

// TestMetricsExposition drives every endpoint once and asserts the
// taxonomy's key series are present and moving.
func TestMetricsExposition(t *testing.T) {
	_, ts := newStaticServer(t)
	postJSON(t, ts.URL+"/v1/aggregate", AggregateRequest{Op: "union", Interval: IntervalSpec{From: "t0"}, Interval2: IntervalSpec{From: "t1"}, Attrs: []string{"gender"}, Kind: "all"})
	postJSON(t, ts.URL+"/v1/explore", ExploreRequest{Event: "stability", K: 2, Attrs: []string{"gender"}})
	postJSON(t, ts.URL+"/v1/tgql", TGQLRequest{Query: "STATS"})

	code, body := get(t, ts.URL+"/metrics")
	if code != 200 {
		t.Fatalf("metrics = %d", code)
	}
	text := string(body)
	for _, want := range []string{
		`graphtempod_requests_total{code="200",endpoint="aggregate"} 1`,
		`graphtempod_requests_total{code="200",endpoint="explore"} 1`,
		`graphtempod_requests_total{code="200",endpoint="tgql"} 1`,
		"# TYPE graphtempod_request_seconds histogram",
		`graphtempod_request_seconds_count{endpoint="aggregate"} 1`,
		"# TYPE graphtempod_catalog_answers_total counter",
		"# TYPE graphtempod_inflight gauge",
		"graphtempod_panics_total 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	// The union+ALL request was answered by the catalog: one non-zero
	// source counter must be present.
	if !strings.Contains(text, `graphtempod_catalog_answers_total{source="scratch"} 1`) {
		t.Errorf("catalog scratch answer not counted:\n%s", grepMetrics(text, "catalog_answers"))
	}
	// The explore request moved the engine's evaluation counter.
	if strings.Contains(text, "graphtempod_explorer_evaluations_total 0\n") {
		t.Error("explorer evaluations not counted")
	}
	if !strings.Contains(text, "graphtempod_explorer_evaluations_total") {
		t.Error("explorer evaluations series missing")
	}
}

func grepMetrics(text, substr string) string {
	var b strings.Builder
	for _, line := range strings.Split(text, "\n") {
		if strings.Contains(line, substr) {
			fmt.Fprintln(&b, line)
		}
	}
	return b.String()
}

// TestExplainEndpoint checks POST /v1/explain: the plan text names the
// selected operators, compilation errors map to 400, and explaining a
// query executes nothing (the catalog stays untouched).
func TestExplainEndpoint(t *testing.T) {
	_, ts := newStaticServer(t)
	code, data := postJSON(t, ts.URL+"/v1/explain", ExplainRequest{Query: "AGG ALL gender ON UNION(t0, t1)"})
	if code != 200 {
		t.Fatalf("explain = %d: %s", code, data)
	}
	var resp ExplainResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(resp.Plan, "plan: AGG ALL gender ON UNION(t0, t1)") {
		t.Errorf("plan header missing:\n%s", resp.Plan)
	}
	if !strings.Contains(resp.Plan, "CatalogUnionAll") {
		t.Errorf("union-ALL plan does not route through the catalog:\n%s", resp.Plan)
	}

	// A leading EXPLAIN keyword is accepted (clients may forward REPL text).
	code, data = postJSON(t, ts.URL+"/v1/explain", ExplainRequest{Query: "EXPLAIN EXPLORE STABILITY BY gender K 2"})
	if code != 200 || !strings.Contains(string(data), "FastExplore") {
		t.Errorf("explain of EXPLAIN-prefixed explore = %d: %s", code, data)
	}

	// Compile-only: no catalog answer was produced by any explain above.
	if _, body := get(t, ts.URL+"/metrics"); !strings.Contains(string(body),
		`graphtempod_catalog_answers_total{source="scratch"} 0`) {
		t.Error("explain executed a catalog query")
	}

	for _, bad := range []ExplainRequest{
		{},                                       // missing query
		{Query: "AGG ALL nope ON UNION(t0, t1)"}, // unknown attribute
		{Query: "EXPLAIN STATS"},                 // no query plan for STATS
		{Query: "FROB"},                          // parse error
	} {
		if code, data := postJSON(t, ts.URL+"/v1/explain", bad); code != http.StatusBadRequest {
			t.Errorf("explain %+v = %d, want 400: %s", bad, code, data)
		}
	}
}

// TestPlannerMetrics checks that planner operator selections and plan
// cache lookups surface at /metrics. The counters are package-global
// (shared with other tests in this run), so assertions are non-zero
// presence, not exact values.
func TestPlannerMetrics(t *testing.T) {
	_, ts := newStaticServer(t)
	ag := AggregateRequest{Op: "union", Interval: IntervalSpec{From: "t0"}, Interval2: IntervalSpec{From: "t1"}, Attrs: []string{"gender"}, Kind: "all"}
	if code, data := postJSON(t, ts.URL+"/v1/aggregate", ag); code != 200 {
		t.Fatalf("aggregate = %d: %s", code, data)
	}
	// Same canonical query again: the second compile is a plan-cache hit.
	if code, _ := postJSON(t, ts.URL+"/v1/aggregate", ag); code != 200 {
		t.Fatal("repeat aggregate failed")
	}
	if code, _ := postJSON(t, ts.URL+"/v1/aggregate", AggregateRequest{
		Op: "project", Interval: IntervalSpec{From: "t0", To: "t1"}, Attrs: []string{"gender"}}); code != 200 {
		t.Fatal("project aggregate failed")
	}
	if code, _ := postJSON(t, ts.URL+"/v1/explore", ExploreRequest{Event: "stability", K: 2, Attrs: []string{"gender"}}); code != 200 {
		t.Fatal("explore failed")
	}
	if code, _ := postJSON(t, ts.URL+"/v1/tgql", TGQLRequest{Query: "TIMELINE BY gender"}); code != 200 {
		t.Fatal("tgql timeline failed")
	}

	_, body := get(t, ts.URL+"/metrics")
	text := string(body)
	for _, re := range []string{
		`graphtempod_planner_selections_total\{op="catalog-union"\} [1-9]`,
		`graphtempod_planner_selections_total\{op="dense-agg"\} [1-9]`,
		`graphtempod_planner_selections_total\{op="fast-explore"\} [1-9]`,
		`graphtempod_planner_selections_total\{op="timeline"\} [1-9]`,
		`graphtempod_plan_cache_total\{result="miss"\} [1-9]`,
		`graphtempod_plan_cache_total\{result="hit"\} [1-9]`,
	} {
		if !regexp.MustCompile(re).MatchString(text) {
			t.Errorf("metrics missing %s:\n%s", re, grepMetrics(text, "planner_selections|plan_cache"))
		}
	}
}
