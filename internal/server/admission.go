package server

import (
	"context"
	"errors"
	"sync"
)

// ErrOverloaded is returned by acquire when the semaphore is saturated and
// the wait queue is full; the HTTP layer translates it to 429 with a
// Retry-After hint.
var ErrOverloaded = errors.New("server: overloaded")

// admission is a weighted semaphore with a bounded FIFO wait queue. Cheap
// requests (weight 1) and expensive ones (weight > 1) draw from the same
// capacity, so a burst of heavy explorations cannot starve the process of
// memory and CPU; once capacity is exhausted up to maxQueue requests wait
// (respecting their deadlines) and everything beyond that is shed
// immediately instead of building an unbounded backlog.
type admission struct {
	mu       sync.Mutex
	capacity int64
	inflight int64
	maxQueue int
	waiters  []*waiter
}

type waiter struct {
	weight int64
	ready  chan struct{} // closed by release when the waiter is admitted
}

// newAdmission returns a semaphore with the given capacity and wait-queue
// bound. capacity < 1 is raised to 1 so every request can eventually run.
func newAdmission(capacity int64, maxQueue int) *admission {
	if capacity < 1 {
		capacity = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &admission{capacity: capacity, maxQueue: maxQueue}
}

// acquire blocks until weight units are granted, the context expires, or
// the queue overflows. Weights above capacity are clamped so oversized
// requests are admissible (alone) rather than deadlocked.
func (a *admission) acquire(ctx context.Context, weight int64) error {
	if weight < 1 {
		weight = 1
	}
	if weight > a.capacity {
		weight = a.capacity
	}
	a.mu.Lock()
	// Fast path: capacity available and nobody queued ahead of us.
	if len(a.waiters) == 0 && a.inflight+weight <= a.capacity {
		a.inflight += weight
		a.mu.Unlock()
		return nil
	}
	if len(a.waiters) >= a.maxQueue {
		a.mu.Unlock()
		return ErrOverloaded
	}
	w := &waiter{weight: weight, ready: make(chan struct{})}
	a.waiters = append(a.waiters, w)
	a.mu.Unlock()

	select {
	case <-w.ready:
		return nil
	case <-ctx.Done():
		a.mu.Lock()
		for i, q := range a.waiters {
			if q == w {
				a.waiters = append(a.waiters[:i], a.waiters[i+1:]...)
				a.mu.Unlock()
				return ctx.Err()
			}
		}
		// Not queued anymore: release already granted us between the
		// ctx firing and the lock. Give the units back.
		a.mu.Unlock()
		a.release(weight)
		return ctx.Err()
	}
}

// release returns weight units and admits queued waiters in FIFO order
// while they fit.
func (a *admission) release(weight int64) {
	if weight < 1 {
		weight = 1
	}
	if weight > a.capacity {
		weight = a.capacity
	}
	a.mu.Lock()
	a.inflight -= weight
	if a.inflight < 0 {
		a.inflight = 0
	}
	for len(a.waiters) > 0 {
		w := a.waiters[0]
		if a.inflight+w.weight > a.capacity {
			break
		}
		a.inflight += w.weight
		a.waiters = a.waiters[1:]
		close(w.ready)
	}
	a.mu.Unlock()
}

// queued returns the current wait-queue length (for metrics).
func (a *admission) queued() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.waiters)
}

// used returns the in-flight weight (for metrics).
func (a *admission) used() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.inflight
}
