package server

import (
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/stream"
)

// TestConcurrentClients hammers a stream-mode server with parallel
// aggregate, explore, tgql and metrics traffic while another goroutine
// keeps ingesting new time points — the -race exercise for the serving
// path end to end (admission, state rebuilds, series locking, catalog).
func TestConcurrentClients(t *testing.T) {
	series := stream.New(
		core.AttrSpec{Name: "gender", Kind: core.Static},
		core.AttrSpec{Name: "publications", Kind: core.TimeVarying},
	)
	s, err := New(Config{Series: series, Logger: quietLogger()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	snap := func(i int) IngestRequest {
		return IngestRequest{
			Label: fmt.Sprintf("t%d", i),
			Nodes: []IngestNode{
				{Label: "u1", Static: map[string]string{"gender": "m"}, Varying: map[string]string{"publications": "1"}},
				{Label: "u2", Static: map[string]string{"gender": "f"}, Varying: map[string]string{"publications": "2"}},
				{Label: fmt.Sprintf("u%d", 3+i%3), Static: map[string]string{"gender": "f"}, Varying: map[string]string{"publications": "1"}},
			},
			Edges: []IngestEdge{{U: "u1", V: "u2"}},
		}
	}
	// Seed two points so queries have something to chew on from the start.
	for i := 0; i < 2; i++ {
		if code, data := postJSON(t, ts.URL+"/v1/ingest", snap(i)); code != 200 {
			t.Fatalf("seed ingest %d: %d: %s", i, code, data)
		}
	}

	const extraPoints = 12
	done := make(chan struct{})
	var wg sync.WaitGroup

	wg.Add(1)
	go func() { // writer: one ingest stream
		defer wg.Done()
		defer close(done)
		for i := 2; i < 2+extraPoints; i++ {
			if code, data := postJSON(t, ts.URL+"/v1/ingest", snap(i)); code != 200 {
				t.Errorf("ingest %d: %d: %s", i, code, data)
				return
			}
		}
	}()

	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-done:
					if i > 0 {
						return
					}
				default:
				}
				var code int
				var data []byte
				switch (c + i) % 4 {
				case 0:
					code, data = postJSON(t, ts.URL+"/v1/aggregate", AggregateRequest{
						Op: "union", Interval: IntervalSpec{From: "t0"}, Interval2: IntervalSpec{From: "t1"},
						Attrs: []string{"gender"}, Kind: "all"})
				case 1:
					code, data = postJSON(t, ts.URL+"/v1/explore", ExploreRequest{
						Event: "stability", K: 1, Attrs: []string{"gender"}})
				case 2:
					code, data = postJSON(t, ts.URL+"/v1/tgql", TGQLRequest{Query: "STATS"})
				default:
					code, data = get(t, ts.URL+"/metrics")
				}
				// 429 is legitimate under overload; anything else must be 200.
				if code != 200 && code != 429 {
					t.Errorf("client %d request %d: %d: %s", c, i, code, data)
					return
				}
			}
		}(c)
	}
	wg.Wait()

	if got := series.Len(); got != 2+extraPoints {
		t.Fatalf("series ended at %d points, want %d", got, 2+extraPoints)
	}
	if code, _ := get(t, ts.URL+"/readyz"); code != 200 {
		t.Fatalf("readyz after hammer = %d", code)
	}
}
