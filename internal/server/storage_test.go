package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/storage"
)

// durableAttrs is the stream schema used by the durable-mode tests.
func durableAttrs() []core.AttrSpec {
	return []core.AttrSpec{
		{Name: "gender", Kind: core.Static},
		{Name: "publications", Kind: core.TimeVarying},
	}
}

// durableSnaps is a two-point ingestion sequence (same shape as the
// stream-mode lifecycle test).
func durableSnaps() []IngestRequest {
	return []IngestRequest{
		{Label: "t0",
			Nodes: []IngestNode{
				{Label: "u1", Static: map[string]string{"gender": "m"}, Varying: map[string]string{"publications": "3"}},
				{Label: "u2", Static: map[string]string{"gender": "f"}, Varying: map[string]string{"publications": "1"}},
			},
			Edges: []IngestEdge{{U: "u1", V: "u2"}}},
		{Label: "t1",
			Nodes: []IngestNode{
				{Label: "u1", Static: map[string]string{"gender": "m"}, Varying: map[string]string{"publications": "1"}},
				{Label: "u2", Static: map[string]string{"gender": "f"}, Varying: map[string]string{"publications": "1"}},
				{Label: "u3", Static: map[string]string{"gender": "f"}, Varying: map[string]string{"publications": "2"}},
			},
			Edges: []IngestEdge{{U: "u1", V: "u2"}, {U: "u2", V: "u3"}}},
	}
}

// queryAll runs the three read endpoints and returns the deterministic
// parts of each response: aggregate graph bytes, the full explore
// response, and TGQL text + graph bytes. Timing fields are excluded by
// construction.
func queryAll(t *testing.T, base string) (aggGraph []byte, explore ExploreResponse, tgqlText string, tgqlGraph []byte) {
	t.Helper()
	code, data := postJSON(t, base+"/v1/aggregate", AggregateRequest{
		Op: "union", Interval: IntervalSpec{From: "t0"}, Interval2: IntervalSpec{From: "t1"},
		Attrs: []string{"gender"}, Kind: "all",
	})
	if code != 200 {
		t.Fatalf("aggregate = %d: %s", code, data)
	}
	var ar AggregateResponse
	if err := json.Unmarshal(data, &ar); err != nil {
		t.Fatal(err)
	}
	aggGraph = ar.Graph

	code, data = postJSON(t, base+"/v1/explore", ExploreRequest{
		Event: "growth", Semantics: "union", Extend: "old", K: 1, Attrs: []string{"gender"},
	})
	if code != 200 {
		t.Fatalf("explore = %d: %s", code, data)
	}
	if err := json.Unmarshal(data, &explore); err != nil {
		t.Fatal(err)
	}
	explore.ElapsedMs = 0

	code, data = postJSON(t, base+"/v1/tgql", TGQLRequest{
		Query: "AGG DIST gender ON INTERSECT(t0, t1)",
	})
	if code != 200 {
		t.Fatalf("tgql = %d: %s", code, data)
	}
	var tr TGQLResponse
	if err := json.Unmarshal(data, &tr); err != nil {
		t.Fatal(err)
	}
	return aggGraph, explore, tr.Text, tr.Graph
}

// TestDurableIngestRecoveryByteIdentical is the persistence acceptance
// criterion at the server level: ingest through a storage-backed server,
// abandon the engine without Close (the moral equivalent of kill -9 —
// fsync=always has already made every acknowledged append durable), then
// reopen the same directory and check the three read endpoints serve
// byte-identical payloads.
func TestDurableIngestRecoveryByteIdentical(t *testing.T) {
	dir := t.TempDir()
	eng, err := storage.Open(dir, durableAttrs(), storage.Options{
		Fsync:             storage.FsyncAlways,
		CheckpointRecords: -1, // WAL-only: recovery must replay every record
		Logger:            quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Storage: eng, Logger: quietLogger()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())

	for i, snap := range durableSnaps() {
		code, data := postJSON(t, ts.URL+"/v1/ingest", snap)
		if code != 200 {
			t.Fatalf("ingest %s: %d: %s", snap.Label, code, data)
		}
		var ir IngestResponse
		if err := json.Unmarshal(data, &ir); err != nil {
			t.Fatal(err)
		}
		if ir.Points != i+1 {
			t.Fatalf("ingest %s: points = %d, want %d", snap.Label, ir.Points, i+1)
		}
	}
	aggBefore, expBefore, txtBefore, tgBefore := queryAll(t, ts.URL)
	ts.Close()
	// Crash: the engine is dropped without Close. Its file handle stays
	// open for the test's lifetime, which is exactly what a SIGKILL leaves.

	eng2, err := storage.Open(dir, durableAttrs(), storage.Options{Logger: quietLogger()})
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	defer eng2.Close()
	if ri := eng2.Recovery(); ri.WALRecords != 2 {
		t.Fatalf("recovered %d WAL records, want 2 (%+v)", ri.WALRecords, ri)
	}
	s2, err := New(Config{Storage: eng2, Logger: quietLogger()})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()

	aggAfter, expAfter, txtAfter, tgAfter := queryAll(t, ts2.URL)
	if !bytes.Equal(aggBefore, aggAfter) {
		t.Errorf("aggregate graph diverged after recovery:\n before %s\n after  %s", aggBefore, aggAfter)
	}
	if b, a := mustJSON(t, expBefore), mustJSON(t, expAfter); !bytes.Equal(b, a) {
		t.Errorf("explore diverged after recovery:\n before %s\n after  %s", b, a)
	}
	if txtBefore != txtAfter {
		t.Errorf("tgql text diverged after recovery:\n before %q\n after  %q", txtBefore, txtAfter)
	}
	if !bytes.Equal(tgBefore, tgAfter) {
		t.Errorf("tgql graph diverged after recovery:\n before %s\n after  %s", tgBefore, tgAfter)
	}

	// The recovery counters surface on /metrics (the CI crash-recovery
	// step greps for a non-zero records total).
	code, data := get(t, ts2.URL+"/metrics")
	if code != 200 {
		t.Fatalf("metrics = %d", code)
	}
	if !strings.Contains(string(data), "graphtempod_storage_recovery_records_total 2") {
		t.Errorf("metrics missing recovery records total:\n%s", data)
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestDurableIngestCheckpointServes checks the serving path stays correct
// across a checkpoint: after compaction the series and plan cache still
// answer from the same data.
func TestDurableIngestCheckpointServes(t *testing.T) {
	dir := t.TempDir()
	eng, err := storage.Open(dir, durableAttrs(), storage.Options{
		Fsync:             storage.FsyncNever,
		CheckpointRecords: -1,
		Logger:            quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	s, err := New(Config{Storage: eng, Logger: quietLogger()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, snap := range durableSnaps() {
		if code, data := postJSON(t, ts.URL+"/v1/ingest", snap); code != 200 {
			t.Fatalf("ingest %s: %d: %s", snap.Label, code, data)
		}
	}
	aggBefore, _, _, _ := queryAll(t, ts.URL)
	if err := eng.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if gen := eng.Stats().Generation; gen != 1 {
		t.Fatalf("generation after checkpoint = %d, want 1", gen)
	}
	aggAfter, _, _, _ := queryAll(t, ts.URL)
	if !bytes.Equal(aggBefore, aggAfter) {
		t.Fatalf("aggregate diverged across checkpoint:\n before %s\n after  %s", aggBefore, aggAfter)
	}
}

// TestBodyTooLarge checks the configurable request-body cap: an oversized
// body is refused with a structured 413 naming the limit, and a body
// under the cap still parses.
func TestBodyTooLarge(t *testing.T) {
	s, err := New(Config{Graph: core.PaperExample(), MaxBodyBytes: 512, Logger: quietLogger()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	big := TGQLRequest{Query: "STATS /* " + strings.Repeat("x", 4096) + " */"}
	code, data := postJSON(t, ts.URL+"/v1/tgql", big)
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body = %d, want 413: %s", code, data)
	}
	var eb struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.Unmarshal(data, &eb); err != nil {
		t.Fatalf("413 body is not the JSON error envelope: %s", data)
	}
	if eb.Error.Code != "body_too_large" {
		t.Fatalf("413 error code %q, want body_too_large", eb.Error.Code)
	}
	if !strings.Contains(eb.Error.Message, "512-byte limit") {
		t.Fatalf("413 error %q does not name the limit", eb.Error.Message)
	}

	if code, data := postJSON(t, ts.URL+"/v1/tgql", TGQLRequest{Query: "STATS"}); code != 200 {
		t.Fatalf("small body = %d: %s", code, data)
	}

	// The cap applies to every decoding endpoint, ingest included.
	code, data = postJSON(t, ts.URL+"/v1/aggregate", AggregateRequest{
		Op: "project", Attrs: []string{strings.Repeat("a", 4096)},
	})
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized aggregate = %d, want 413: %s", code, data)
	}
}

// TestConfigStorageMode checks the one-of-three data source validation.
func TestConfigStorageMode(t *testing.T) {
	if _, err := New(Config{Logger: quietLogger()}); err == nil {
		t.Fatal("no data source accepted")
	}
	eng, err := storage.Open(t.TempDir(), durableAttrs(), storage.Options{Logger: quietLogger()})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if _, err := New(Config{Graph: core.PaperExample(), Storage: eng, Logger: quietLogger()}); err == nil {
		t.Fatal("graph + storage accepted")
	}
}
