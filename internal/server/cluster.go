package server

import (
	"context"
	"fmt"
	"net/http"
	"runtime"
	"runtime/debug"
	"strconv"
	"time"

	"repro/internal/plan"
	"repro/internal/storage"
)

// This file is the shard-side control plane of the cluster tier: the
// status/labels probes the router builds its shard map and lag view from,
// the partial-aggregate endpoint scattered queries execute against, and
// the WAL stream that feeds read replicas and the router's mirror.

// Cluster roles, as reported by /v1/status and configured via Config.Role.
const (
	RoleSingle  = "single"
	RolePrimary = "primary"
	RoleReplica = "replica"
)

// BuildVersion, when set by the binary's main (e.g. from -ldflags), is
// reported verbatim in /v1/status; otherwise the module's VCS stamp is
// used.
var BuildVersion string

// role resolves the effective cluster role.
func (s *Server) role() string {
	if s.cfg.Role != "" {
		return s.cfg.Role
	}
	if s.cfg.ShardName != "" {
		return RolePrimary
	}
	return RoleSingle
}

// BuildString renders the build identity: BuildVersion if stamped, else
// the VCS revision baked into the binary, else "dev". Exported for the
// router, which reports the same identity from its own /v1/status.
func BuildString() string {
	if BuildVersion != "" {
		return BuildVersion
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		var rev, dirty string
		for _, kv := range bi.Settings {
			switch kv.Key {
			case "vcs.revision":
				rev = kv.Value
			case "vcs.modified":
				if kv.Value == "true" {
					dirty = "-dirty"
				}
			}
		}
		if rev != "" {
			if len(rev) > 12 {
				rev = rev[:12]
			}
			return rev + dirty
		}
	}
	return "dev"
}

// StatusAttr is one schema attribute in the status report; the router's
// mirror reconstructs its series schema from these.
type StatusAttr struct {
	Name string `json:"name"`
	Kind string `json:"kind"` // static or time-varying
}

// StatusResponse is the GET /v1/status body: build identity, mode and
// cluster role, and the replication watermarks the router's health and lag
// probes consume. Points is the WAL high-water sequence (time points ever
// appended — the exclusive upper bound of /v1/wal/stream); Visible is the
// serving generation queries currently answer at (Visible < Points only in
// the short window between an append and the next lazy advance).
type StatusResponse struct {
	Build             string       `json:"build"`
	GoVersion         string       `json:"go_version"`
	FormatVersion     int          `json:"format_version"`
	Mode              string       `json:"mode"` // static, stream or durable
	Role              string       `json:"role"`
	Shard             string       `json:"shard,omitempty"`
	Points            int          `json:"points"`
	Visible           int          `json:"visible"`
	Txn               int          `json:"txn"`
	StorageGeneration uint64       `json:"storage_generation,omitempty"`
	Attrs             []StatusAttr `json:"attrs"`
	Draining          bool         `json:"draining"`
}

// timelinePoints returns the number of time points and a label fetch for
// the serving timeline, whichever mode backs it.
func (s *Server) timelinePoints() (int, func() []string) {
	if s.series != nil {
		return s.series.Len(), s.series.Labels
	}
	tl := s.cfg.Graph.Timeline()
	return tl.Len(), tl.Labels
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	mode := "static"
	if s.storage != nil {
		mode = "durable"
	} else if s.series != nil {
		mode = "stream"
	}
	points, _ := s.timelinePoints()
	resp := StatusResponse{
		Build:         BuildString(),
		GoVersion:     runtime.Version(),
		FormatVersion: int(storage.FormatVersion),
		Mode:          mode,
		Role:          s.role(),
		Shard:         s.cfg.ShardName,
		Points:        points,
		Visible:       points, // static mode serves its whole timeline
		Txn:           s.headTxn(),
		Draining:      s.draining.Load(),
	}
	if s.series != nil {
		resp.Visible = 0
		if st := s.cur.Load(); st != nil {
			resp.Visible = st.gen
		}
		for _, a := range s.series.Attrs() {
			resp.Attrs = append(resp.Attrs, StatusAttr{Name: a.Name, Kind: a.Kind.String()})
		}
	} else {
		for _, a := range s.cfg.Graph.Attrs() {
			resp.Attrs = append(resp.Attrs, StatusAttr{Name: a.Name, Kind: a.Kind.String()})
		}
	}
	if s.storage != nil {
		resp.StorageGeneration = s.storage.Stats().Generation
	}
	writeJSON(w, resp)
}

// LabelsResponse is the GET /v1/labels body: the total point count and the
// time-point labels from the requested index on. The router pins shard
// boundaries from these at startup and maps global labels to shards.
type LabelsResponse struct {
	Points int      `json:"points"`
	Labels []string `json:"labels"`
}

func (s *Server) handleLabels(w http.ResponseWriter, r *http.Request) {
	from := 0
	if v := r.URL.Query().Get("from"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("from must be a non-negative integer"))
			return
		}
		from = n
	}
	points, fetch := s.timelinePoints()
	if from > points {
		writeError(w, http.StatusBadRequest, fmt.Errorf("from %d is beyond the timeline end %d", from, points))
		return
	}
	labels := fetch()
	writeJSON(w, LabelsResponse{Points: points, Labels: labels[from:]})
}

// PartialAggregateResponse carries a shard-local partial aggregate for the
// router's gather-merge, mirroring AggregateResponse's source/elapsed
// reporting.
type PartialAggregateResponse struct {
	Source    string              `json:"source,omitempty"`
	ElapsedMs float64             `json:"elapsed_ms"`
	Partial   *plan.PartialResult `json:"partial"`
}

func (s *Server) handlePartialAggregate(ctx context.Context, w http.ResponseWriter, r *http.Request) (int, error) {
	var req AggregateRequest
	if status, err := s.decodeJSON(w, r, &req); err != nil {
		return status, err
	}
	if req.AsOf != 0 {
		// Shards serve the head only; the router answers AS OF from its
		// mirror rather than scattering it.
		return http.StatusBadRequest, fmt.Errorf("partial aggregates cannot serve as_of; query the router's mirror")
	}
	st, err := s.current()
	if err != nil {
		return http.StatusServiceUnavailable, err
	}
	node := &plan.Partial{
		Op:    plan.TemporalOp{Op: req.Op, A: req.Interval.ref(), B: req.Interval2.ref()},
		Attrs: req.Attrs,
		Kind:  req.Kind,
	}
	p, err := plan.Compile(s.planEnv(st, req.Workers), node)
	if err != nil {
		return http.StatusBadRequest, err
	}
	start := time.Now()
	res, err := p.Execute(ctx)
	if err != nil {
		return execStatus(err), err
	}
	return writeJSON(w, PartialAggregateResponse{
		Source:    res.Partial.Source,
		ElapsedMs: float64(time.Since(start).Microseconds()) / 1000,
		Partial:   res.Partial,
	})
}

// handleWALStream serves GET /v1/wal/stream?from=N[&wait_ms=W]: the ingest
// records with global sequence >= N, each framed [len][crc32c][payload]
// (storage.ReadFramedRecord decodes). X-Wal-From/X-Wal-Next bracket the
// returned range; wait_ms long-polls for new records when the follower is
// caught up, so replication stays tight without hammering the primary.
func (s *Server) handleWALStream(w http.ResponseWriter, r *http.Request) {
	if s.series == nil {
		writeError(w, http.StatusConflict, fmt.Errorf("server runs in static mode; there is no WAL to stream"))
		return
	}
	q := r.URL.Query()
	from := 0
	if v := q.Get("from"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("from must be a non-negative integer"))
			return
		}
		from = n
	}
	waitMs := 0
	if v := q.Get("wait_ms"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("wait_ms must be a non-negative integer"))
			return
		}
		waitMs = n
	}
	deadline := time.Now().Add(time.Duration(waitMs) * time.Millisecond)
	for {
		n := s.series.Len()
		if from > n {
			writeError(w, http.StatusBadRequest, fmt.Errorf("wal stream: from %d is beyond the log end %d", from, n))
			return
		}
		if n > from || waitMs == 0 || !time.Now().Before(deadline) {
			break
		}
		select {
		case <-r.Context().Done():
			return
		case <-time.After(20 * time.Millisecond):
		}
	}
	records := s.tailRecords(from)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Wal-From", strconv.Itoa(from))
	w.Header().Set("X-Wal-Next", strconv.Itoa(from+len(records)))
	w.WriteHeader(http.StatusOK)
	for _, rec := range records {
		if err := storage.WriteFramedRecord(w, rec); err != nil {
			return // client went away mid-stream; it will re-request from its applied seq
		}
	}
}

// tailRecords returns the encoded ingest records from global sequence
// `from`. Durable mode serves the engine's retained raw log (the bytes the
// WAL framed on disk); non-durable stream mode re-encodes from the series
// journal — transaction order, not valid order, so retroactive inserts
// replay at the position they arrived and the follower converges on an
// identical series.
func (s *Server) tailRecords(from int) [][]byte {
	if s.storage != nil {
		if recs, err := s.storage.TailRecords(from); err == nil {
			return recs
		}
	}
	journal := s.series.Journal()
	if from >= len(journal) {
		return nil
	}
	out := make([][]byte, 0, len(journal)-from)
	for _, e := range journal[from:] {
		if e.Before != "" {
			out = append(out, storage.EncodeIngestAtRecord(e.Label, e.Before, e.Snap))
		} else {
			out = append(out, storage.EncodeIngestRecord(e.Label, e.Snap))
		}
	}
	return out
}
