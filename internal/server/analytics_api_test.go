package server

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/agg"
	"repro/internal/analytics"
	"repro/internal/core"
	"repro/internal/stream"
)

// The analytics endpoints (/v1/events, /v1/paths, /v1/trend) must answer
// byte-identically to the underlying engines, honor as_of pins, and be
// rejected outright on partial (time-range shard) daemons — including via
// /v1/tgql and /v1/explain.

func analyticsJSONBody(t *testing.T, v any) string {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestEventsEndpointMatchesEngine(t *testing.T) {
	_, ts := newStaticServer(t)
	code, data := postJSON(t, ts.URL+"/v1/events", EventsRequest{Attrs: []string{"gender"}})
	if code != 200 {
		t.Fatalf("events = %d: %s", code, data)
	}
	var resp EventsResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		t.Fatal(err)
	}
	g := core.PaperExample()
	want := analytics.EventsSweep(g, analytics.EventsSpec{
		Schema: agg.MustSchema(g, g.MustAttr("gender")),
		Kind:   agg.Distinct,
	})
	if got, exp := analyticsJSONBody(t, resp.Events), analyticsJSONBody(t, want); got != exp {
		t.Fatalf("events endpoint diverges from engine:\n got %s\nwant %s", got, exp)
	}
	if resp.Events.Steps != 2 {
		t.Fatalf("steps = %d, want 2", resp.Events.Steps)
	}
}

func TestPathsEndpointMatchesEngine(t *testing.T) {
	_, ts := newStaticServer(t)
	code, data := postJSON(t, ts.URL+"/v1/paths", PathsRequest{
		From: []string{"u1"}, To: []string{"u2", "u4"},
	})
	if code != 200 {
		t.Fatalf("paths = %d: %s", code, data)
	}
	var resp PathsResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		t.Fatal(err)
	}
	g := core.PaperExample()
	u1, _ := g.NodeByLabel("u1")
	u2, _ := g.NodeByLabel("u2")
	u4, _ := g.NodeByLabel("u4")
	want := analytics.NewPathsEngine(g, analytics.PathsSpec{
		Mode:   analytics.ModeEarliest,
		Src:    []core.NodeID{u1},
		Dst:    []core.NodeID{u2, u4},
		Window: g.Timeline().All(),
	}).Run()
	if got, exp := analyticsJSONBody(t, resp.Paths), analyticsJSONBody(t, want); got != exp {
		t.Fatalf("paths endpoint diverges from engine:\n got %s\nwant %s", got, exp)
	}
}

func TestTrendEndpointMatchesEngine(t *testing.T) {
	_, ts := newStaticServer(t)
	code, data := postJSON(t, ts.URL+"/v1/trend", TrendRequest{
		Attrs: []string{"gender"}, Kind: "all", Width: 2,
	})
	if code != 200 {
		t.Fatalf("trend = %d: %s", code, data)
	}
	var resp TrendResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		t.Fatal(err)
	}
	g := core.PaperExample()
	want := analytics.TrendScan(g, analytics.TrendSpec{
		Schema: agg.MustSchema(g, g.MustAttr("gender")),
		Kind:   agg.All,
		Width:  2,
	})
	if got, exp := analyticsJSONBody(t, resp.Trend), analyticsJSONBody(t, want); got != exp {
		t.Fatalf("trend endpoint diverges from engine:\n got %s\nwant %s", got, exp)
	}
	if resp.Trend.Windows != 2 {
		t.Fatalf("windows = %d, want 2", resp.Trend.Windows)
	}
}

// TestAnalyticsEndpointsAsOf pins the three endpoints to an early
// transaction of a stream-mode server and checks the view shrinks
// accordingly, while an explicit head pin matches the live answer.
func TestAnalyticsEndpointsAsOf(t *testing.T) {
	series := stream.New(
		core.AttrSpec{Name: "gender", Kind: core.Static},
		core.AttrSpec{Name: "publications", Kind: core.TimeVarying},
	)
	s, err := New(Config{Series: series, Logger: quietLogger()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	var head int
	for _, req := range asOfBatches()[:3] {
		head = ingestAck(t, ts.URL, req).Txn
	}

	eventsAt := func(asOf int) *analytics.EventsResult {
		code, data := postJSON(t, ts.URL+"/v1/events",
			EventsRequest{Attrs: []string{"gender"}, AsOf: asOf})
		if code != 200 {
			t.Fatalf("events as_of %d = %d: %s", asOf, code, data)
		}
		var resp EventsResponse
		if err := json.Unmarshal(data, &resp); err != nil {
			t.Fatal(err)
		}
		return resp.Events
	}
	live, pinned := eventsAt(0), eventsAt(head)
	if analyticsJSONBody(t, live) != analyticsJSONBody(t, pinned) {
		t.Fatal("explicit head pin diverges from live answer")
	}
	if live.Steps != 2 {
		t.Fatalf("live steps = %d, want 2", live.Steps)
	}
	if early := eventsAt(1); early.Steps != 0 || len(early.Rows) != 0 {
		t.Fatalf("as_of 1 should see a single point (0 steps), got %+v", early)
	}

	code, data := postJSON(t, ts.URL+"/v1/trend",
		TrendRequest{Attrs: []string{"gender"}, AsOf: 2})
	if code != 200 {
		t.Fatalf("trend as_of 2 = %d: %s", code, data)
	}
	var tr TrendResponse
	if err := json.Unmarshal(data, &tr); err != nil {
		t.Fatal(err)
	}
	if tr.Trend.Windows != 2 {
		t.Fatalf("trend as_of 2 windows = %d, want 2", tr.Trend.Windows)
	}

	// Node resolution happens against the pinned view: u3 does not exist
	// until txn 2, so pinning before that is a compile error...
	code, data = postJSON(t, ts.URL+"/v1/paths",
		PathsRequest{From: []string{"u1"}, To: []string{"u3"}, AsOf: 1})
	if code != 400 || !strings.Contains(string(data), "unknown node") {
		t.Fatalf("paths as_of 1 to u3 = %d %s, want 400 unknown node", code, data)
	}
	// ...and pinning at txn 2 sees the u1 -t0-> u2 -t1-> u3 chain.
	code, data = postJSON(t, ts.URL+"/v1/paths",
		PathsRequest{From: []string{"u1"}, To: []string{"u3"}, AsOf: 2})
	if code != 200 {
		t.Fatalf("paths as_of 2 = %d: %s", code, data)
	}
	var pr PathsResponse
	if err := json.Unmarshal(data, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Paths.Reached != 1 {
		t.Fatalf("paths as_of 2 reached = %d, want 1", pr.Paths.Reached)
	}
}

// TestPartialRejectsAnalytics: a daemon serving one time-range shard must
// refuse every analytics entry point with the typed 400 envelope, while
// still serving non-analytics statements.
func TestPartialRejectsAnalytics(t *testing.T) {
	s, err := New(Config{Graph: core.PaperExample(), Partial: true, Logger: quietLogger()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	wantRejected := func(name string, code int, data []byte) {
		t.Helper()
		if code != 400 {
			t.Fatalf("%s on partial daemon = %d, want 400: %s", name, code, data)
		}
		var eb errorBody
		if err := json.Unmarshal(data, &eb); err != nil {
			t.Fatalf("%s: bad error envelope %s: %v", name, data, err)
		}
		if eb.Error.Code != "bad_request" {
			t.Fatalf("%s: envelope code = %q, want bad_request", name, eb.Error.Code)
		}
		if !strings.Contains(eb.Error.Message, "time-range shard") {
			t.Fatalf("%s: message does not explain the shard restriction: %q", name, eb.Error.Message)
		}
	}

	code, data := postJSON(t, ts.URL+"/v1/events", EventsRequest{Attrs: []string{"gender"}})
	wantRejected("/v1/events", code, data)
	code, data = postJSON(t, ts.URL+"/v1/paths", PathsRequest{From: []string{"u1"}, To: []string{"u2"}})
	wantRejected("/v1/paths", code, data)
	code, data = postJSON(t, ts.URL+"/v1/trend", TrendRequest{Attrs: []string{"gender"}})
	wantRejected("/v1/trend", code, data)

	for _, q := range []string{
		"EVENTS DIST BY gender",
		"PATHS EARLIEST FROM u1 TO u2",
		"TREND ALL BY gender WIDTH 2",
	} {
		code, data = postJSON(t, ts.URL+"/v1/tgql", TGQLRequest{Query: q})
		wantRejected("/v1/tgql "+q, code, data)
		code, data = postJSON(t, ts.URL+"/v1/explain", TGQLRequest{Query: q})
		wantRejected("/v1/explain "+q, code, data)
	}

	// Non-analytics statements still work on the shard daemon.
	code, data = postJSON(t, ts.URL+"/v1/tgql", TGQLRequest{Query: "AGG DIST gender ON UNION(t0, t0)"})
	if code != 200 {
		t.Fatalf("non-analytics tgql on partial daemon = %d: %s", code, data)
	}
}

// TestAnalyticsPlannerMetrics: executing each statement family bumps its
// planner selection counter in the exposition.
func TestAnalyticsPlannerMetrics(t *testing.T) {
	_, ts := newStaticServer(t)
	if code, data := postJSON(t, ts.URL+"/v1/events", EventsRequest{Attrs: []string{"gender"}}); code != 200 {
		t.Fatalf("events = %d: %s", code, data)
	}
	if code, data := postJSON(t, ts.URL+"/v1/paths", PathsRequest{From: []string{"u1"}, To: []string{"u4"}}); code != 200 {
		t.Fatalf("paths = %d: %s", code, data)
	}
	if code, data := postJSON(t, ts.URL+"/v1/trend", TrendRequest{Attrs: []string{"gender"}}); code != 200 {
		t.Fatalf("trend = %d: %s", code, data)
	}
	code, data := get(t, ts.URL+"/metrics")
	if code != 200 {
		t.Fatalf("metrics = %d", code)
	}
	text := string(data)
	for _, op := range []string{"events-sweep", "paths-frontier", "trend-scan"} {
		line := grepMetrics(text, `op="`+op+`"`)
		if line == "" {
			t.Fatalf("planner selections for %s missing from exposition", op)
		}
		if strings.Contains(line, "} 0") {
			t.Fatalf("planner selections for %s did not increment: %s", op, line)
		}
	}
}
