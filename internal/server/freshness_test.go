package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/stream"
)

// newStreamServer builds an empty stream-mode server with the lifecycle
// test's schema.
func newStreamServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	cfg.Series = stream.New(
		core.AttrSpec{Name: "gender", Kind: core.Static},
		core.AttrSpec{Name: "publications", Kind: core.TimeVarying},
	)
	if cfg.Logger == nil {
		cfg.Logger = quietLogger()
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// ingestPoint posts one small consistent snapshot labeled t<i> and returns
// the decoded acknowledgement.
func ingestPoint(t *testing.T, url string, i int) IngestResponse {
	t.Helper()
	code, data := postJSON(t, url+"/v1/ingest", IngestRequest{
		Label: fmt.Sprintf("t%d", i),
		Nodes: []IngestNode{
			{Label: "u1", Static: map[string]string{"gender": "m"},
				Varying: map[string]string{"publications": fmt.Sprintf("%d", i+1)}},
			{Label: "u2", Static: map[string]string{"gender": "f"},
				Varying: map[string]string{"publications": "1"}},
		},
		Edges: []IngestEdge{{U: "u1", V: "u2"}},
	})
	if code != http.StatusOK {
		t.Fatalf("ingest t%d = %d: %s", i, code, data)
	}
	var ir IngestResponse
	if err := json.Unmarshal(data, &ir); err != nil {
		t.Fatal(err)
	}
	return ir
}

// TestIngestDeltaApplies pins the freshness contract: after the initial
// build, every steady-state ingest folds in as a delta (no full rebuilds),
// the acknowledgement reports the point already visible, and the
// visibility histogram records one observation per ingest.
func TestIngestDeltaApplies(t *testing.T) {
	s, ts := newStreamServer(t, Config{})
	const points = 4
	for i := 0; i < points; i++ {
		ir := ingestPoint(t, ts.URL, i)
		if ir.Points != i+1 {
			t.Fatalf("ingest %d: points = %d, want %d", i, ir.Points, i+1)
		}
		if ir.Visible != ir.Points {
			t.Fatalf("ingest %d: visible = %d, want %d (ack must carry visibility)", i, ir.Visible, ir.Points)
		}
	}
	if got := s.deltaApplies.Value(); got != points-1 {
		t.Errorf("delta applies = %d, want %d", got, points-1)
	}
	if got := s.fullRebuilds.Value(); got != 0 {
		t.Errorf("full rebuilds = %d, want 0 in steady state", got)
	}

	// The histogram covers every acknowledged ingest, exposed on /metrics.
	code, body := get(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{
		fmt.Sprintf("graphtempod_catalog_delta_applies_total %d", points-1),
		"graphtempod_catalog_full_rebuilds_total 0",
		fmt.Sprintf("graphtempod_ingest_visibility_seconds_count %d", points),
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestIngestFullRebuildKnob pins the escape hatch: with FullRebuild set,
// every advance replaces the catalog and the delta counter stays zero.
func TestIngestFullRebuildKnob(t *testing.T) {
	s, ts := newStreamServer(t, Config{FullRebuild: true})
	for i := 0; i < 3; i++ {
		if ir := ingestPoint(t, ts.URL, i); ir.Visible != ir.Points {
			t.Fatalf("ingest %d: visible = %d, want %d", i, ir.Visible, ir.Points)
		}
	}
	if got := s.deltaApplies.Value(); got != 0 {
		t.Errorf("delta applies = %d, want 0 with FullRebuild", got)
	}
	if got := s.fullRebuilds.Value(); got != 2 {
		t.Errorf("full rebuilds = %d, want 2", got)
	}
}

// TestIngestStaticBackfillFallsBack pins the soundness fallback: filling in
// a static value for a pre-existing node changes its tuple at old points,
// so the delta is refused and the server rebuilds — counted, and still
// correct (the ack still reports the point visible).
func TestIngestStaticBackfillFallsBack(t *testing.T) {
	s, ts := newStreamServer(t, Config{})
	// t0: u9 appears without a gender.
	code, data := postJSON(t, ts.URL+"/v1/ingest", IngestRequest{
		Label: "t0",
		Nodes: []IngestNode{{Label: "u9", Varying: map[string]string{"publications": "1"}}},
	})
	if code != http.StatusOK {
		t.Fatalf("ingest t0 = %d: %s", code, data)
	}
	// t1: the same node's gender is filled in retroactively.
	code, data = postJSON(t, ts.URL+"/v1/ingest", IngestRequest{
		Label: "t1",
		Nodes: []IngestNode{{Label: "u9", Static: map[string]string{"gender": "m"},
			Varying: map[string]string{"publications": "2"}}},
	})
	if code != http.StatusOK {
		t.Fatalf("ingest t1 = %d: %s", code, data)
	}
	var ir IngestResponse
	if err := json.Unmarshal(data, &ir); err != nil {
		t.Fatal(err)
	}
	if ir.Visible != 2 {
		t.Fatalf("backfill ingest visible = %d, want 2", ir.Visible)
	}
	if got := s.deltaApplies.Value(); got != 0 {
		t.Errorf("delta applies = %d, want 0 (backfill must not delta-apply)", got)
	}
	if got := s.fullRebuilds.Value(); got != 1 {
		t.Errorf("full rebuilds = %d, want 1", got)
	}
}

// TestReadyzGeneration pins the /readyz?gen=N polling contract.
func TestReadyzGeneration(t *testing.T) {
	_, ts := newStreamServer(t, Config{})
	if code, _ := get(t, ts.URL+"/readyz?gen=1"); code != http.StatusServiceUnavailable {
		t.Fatalf("empty readyz?gen=1 = %d, want 503", code)
	}
	ingestPoint(t, ts.URL, 0)
	if code, body := get(t, ts.URL+"/readyz?gen=1"); code != http.StatusOK {
		t.Fatalf("readyz?gen=1 = %d: %s", code, body)
	}
	if code, body := get(t, ts.URL+"/readyz?gen=2"); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz?gen=2 = %d, want 503: %s", code, body)
	}
	if code, _ := get(t, ts.URL+"/readyz?gen=x"); code != http.StatusBadRequest {
		t.Fatalf("readyz?gen=x = %d, want 400", code)
	}

	// Static mode has exactly one generation; the parameter is ignored.
	_, static := newStaticServer(t)
	if code, _ := get(t, static.URL+"/readyz?gen=99"); code != http.StatusOK {
		t.Fatalf("static readyz?gen=99 = %d, want 200", code)
	}
}
