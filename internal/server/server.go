// Package server implements graphtempod's HTTP serving layer: a JSON API
// over the GraphTempo engine (aggregate / explore / TGQL / live ingestion)
// with the production behaviors a long-running query daemon needs —
// per-request deadlines propagated as context.Context into the engine's
// loops, bounded admission (weighted semaphore plus a small wait queue;
// overflow is shed with 429), panic isolation, structured access logs and
// Prometheus metrics.
//
// The server runs in one of two modes. Static mode serves a fixed graph
// given at construction. Stream mode serves a stream.Series that grows via
// POST /v1/ingest; the full graph and its materialization catalog are
// rebuilt lazily when a query observes new time points, so queries always
// see a consistent (graph, catalog) pair.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/lru"
	"repro/internal/materialize"
	"repro/internal/metrics"
	"repro/internal/plan"
	"repro/internal/storage"
	"repro/internal/stream"
)

// Config configures a Server. Exactly one of Graph (static mode), Series
// (stream mode) and Storage (durable stream mode) must be set.
type Config struct {
	// Graph is the dataset served in static mode.
	Graph *core.Graph
	// Series is the live ingestion series served in stream mode, without
	// persistence.
	Series *stream.Series
	// Storage is the durable persistence engine served in stream mode with
	// crash recovery: ingestion goes through its WAL before being
	// acknowledged, and the server serves its recovered series.
	Storage *storage.Engine

	// MaxBodyBytes bounds request bodies (ingest snapshots included);
	// exceeding it returns a structured 413. <= 0 selects 64 MiB.
	MaxBodyBytes int64

	// MaxInflight is the admission semaphore capacity in weight units
	// (aggregate/ingest cost 1, explore/tgql cost 2). <= 0 selects
	// 2×GOMAXPROCS.
	MaxInflight int64
	// MaxQueue is the number of requests allowed to wait for admission
	// before overflow is shed with 429. < 0 selects 2×MaxInflight; 0 is
	// honored (shed immediately at capacity).
	MaxQueue int
	// RequestTimeout bounds each request's context deadline. Clients may
	// request a shorter deadline via the X-Deadline-Ms header; longer is
	// clamped. <= 0 selects 30s.
	RequestTimeout time.Duration
	// CacheBytes sizes the materialization catalog's serving cache
	// (<= 0 selects the catalog default).
	CacheBytes int64
	// HistoryCacheBytes sizes the LRU of reconstructed historical states
	// serving AS OF / VALID DURING queries (<= 0 selects 256 MiB).
	HistoryCacheBytes int64
	// FullRebuild disables incremental catalog advancement in stream mode:
	// every batch of new time points replaces the serving graph and catalog
	// from scratch. Kept as an escape hatch and as the baseline the delta
	// path is benchmarked against.
	FullRebuild bool
	// Logger receives structured access and lifecycle logs; nil selects
	// slog.Default().
	Logger *slog.Logger

	// ShardName names the time-range shard this process serves in a
	// cluster deployment ("" for a standalone node). Surfaced in
	// GET /v1/status for the router's shard-map discovery.
	ShardName string
	// Role is the process's cluster role: "single" (default), "primary"
	// (owns writes for its shard) or "replica" (series is driven by WAL
	// replication; client ingestion is rejected with 409). An empty Role
	// with a ShardName set defaults to primary.
	Role string
	// Partial marks a daemon that serves one time-range slice of a larger
	// cluster timeline (graphtempod -shard). Statements whose answer spans
	// the whole timeline — the EVENTS/PATHS/TREND analytics family — are
	// rejected with a typed 400 instead of returning a silently shard-local
	// result; the router serves them from its full mirror. The mirror
	// itself has a ShardName but is NOT partial: it holds every point.
	Partial bool
}

// endpointWeight is the admission cost of each API endpoint: exploration
// and TGQL may fan out into many candidate evaluations, so they consume
// twice the capacity of a single aggregation.
var endpointWeight = map[string]int64{
	"aggregate": 1,
	"explore":   2,
	"tgql":      2,
	"explain":   1, // compile-only: no engine execution
	"ingest":    1,
	"partial":   1, // shard-local slice of a scattered aggregate
	"events":    2, // whole-timeline entity sweep
	"paths":     2, // per-departure time sweeps in fastest mode
	"trend":     1, // O(windows) from the catalog, single scan otherwise
}

// state is one consistent serving snapshot: the graph, its catalog, and
// the series generation (number of ingested points) it was built from.
type state struct {
	g   *core.Graph
	cat *materialize.Catalog
	gen int
}

// Server is the graphtempod request handler. Create with New, mount
// Handler on an http.Server, call BeginDrain on shutdown.
type Server struct {
	cfg     Config
	log     *slog.Logger
	adm     *admission
	mux     *http.ServeMux
	reg     *metrics.Registry
	series  *stream.Series
	storage *storage.Engine
	plans   *plan.Cache
	fback   *plan.Feedback
	hist    *lru.Cache[plan.HistState]

	cur       atomic.Pointer[state]
	rebuildMu sync.Mutex
	retired   materialize.Stats // counters of catalogs replaced by rebuilds

	// ingest-to-visible freshness tracking (stream mode): each acknowledged
	// ingest is pending until the swap that makes its generation queryable.
	visMu      sync.Mutex
	visPending []visEntry

	draining atomic.Bool

	// metrics
	panics        metrics.Counter
	deltaApplies  metrics.Counter
	retroApplies  metrics.Counter
	fullRebuilds  metrics.Counter
	storeRebuilds metrics.Counter
	visibility    *metrics.Histogram
	reqMu         sync.Mutex
	reqCount      map[string]*metrics.Counter // endpoint\x00code
	latency       map[string]*metrics.Histogram
	shed          map[string]*metrics.Counter
	started       time.Time
}

// New validates cfg, builds the initial serving state (static mode
// materializes immediately; stream mode lazily on first query) and wires
// routes and metrics.
func New(cfg Config) (*Server, error) {
	modes := 0
	for _, set := range []bool{cfg.Graph != nil, cfg.Series != nil, cfg.Storage != nil} {
		if set {
			modes++
		}
	}
	if modes != 1 {
		return nil, fmt.Errorf("server: exactly one of Graph, Series and Storage must be set")
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 64 << 20
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = int64(2 * runtime.GOMAXPROCS(0))
	}
	if cfg.MaxQueue < 0 {
		cfg.MaxQueue = int(2 * cfg.MaxInflight)
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 30 * time.Second
	}
	log := cfg.Logger
	if log == nil {
		log = slog.Default()
	}
	s := &Server{
		cfg:      cfg,
		log:      log,
		adm:      newAdmission(cfg.MaxInflight, cfg.MaxQueue),
		mux:      http.NewServeMux(),
		reg:      metrics.NewRegistry(),
		series:   cfg.Series,
		plans:    plan.NewCache(0),
		fback:    plan.NewFeedback(),
		hist:     newHistCache(cfg.HistoryCacheBytes),
		reqCount: make(map[string]*metrics.Counter),
		latency:  make(map[string]*metrics.Histogram),
		shed:     make(map[string]*metrics.Counter),
		started:  time.Now(),
	}
	if cfg.Storage != nil {
		s.storage = cfg.Storage
		s.series = cfg.Storage.Series()
	}
	if cfg.Graph != nil {
		s.cur.Store(&state{g: cfg.Graph, cat: s.newCatalog(cfg.Graph), gen: -1})
	}
	s.registerMetrics()
	s.routes()
	return s, nil
}

func (s *Server) newCatalog(g *core.Graph) *materialize.Catalog {
	return materialize.NewCatalogWith(g, materialize.CatalogConfig{MaxBytes: s.cfg.CacheBytes})
}

// Handler returns the root handler (routes + middleware).
func (s *Server) Handler() http.Handler { return s.mux }

// Registry returns the server's metrics registry (for tests and for
// embedding the server under an existing registry-aware exporter).
func (s *Server) Registry() *metrics.Registry { return s.reg }

// BeginDrain flips the server into draining mode: /readyz starts failing
// so load balancers stop sending new work, while in-flight requests run to
// completion under the http.Server.Shutdown the caller performs next.
func (s *Server) BeginDrain() {
	if s.draining.CompareAndSwap(false, true) {
		s.log.Info("drain started", "inflight", s.adm.used())
	}
}

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// current returns the serving state, advancing it in stream mode when
// ingestion has moved past the snapshot's generation. The fast path folds
// the appended suffix into the existing catalog in place — O(batch), with
// queries continuing to serve the old generation until the swap — and
// falls back to a stop-the-world rebuild only when the delta is refused
// (non-extension history, static back-fill) or Config.FullRebuild is set.
// It returns an error (mapped to 503) while no data has been ingested yet.
func (s *Server) current() (*state, error) {
	st := s.cur.Load()
	if s.series == nil {
		return st, nil
	}
	gen := s.series.Len()
	if gen == 0 {
		return nil, errNotReady
	}
	if st != nil && st.gen == gen {
		return st, nil
	}
	s.rebuildMu.Lock()
	defer s.rebuildMu.Unlock()
	if st = s.cur.Load(); st != nil && st.gen == s.series.Len() {
		return st, nil
	}
	gen = s.series.Len()
	g, err := s.series.Graph()
	if err != nil {
		return nil, err
	}
	old := s.cur.Load()
	if old != nil && !s.cfg.FullRebuild {
		if stats, aerr := old.cat.Advance(g); aerr == nil {
			st = &state{g: g, cat: old.cat, gen: gen}
			s.cur.Store(st)
			// Bounded plans over the clean prefix keep serving; only plans
			// that can observe the appended suffix are evicted.
			s.plans.Advance(g, old.cat, old.g.Timeline().Len())
			s.deltaApplies.Inc()
			s.storeRebuilds.Add(int64(stats.Rebuilt))
			s.observeVisibility(gen)
			s.log.Info("serving state advanced", "points", gen,
				"new_points", stats.NewPoints, "stores_extended", stats.Extended,
				"stores_rebuilt", stats.Rebuilt)
			return st, nil
		} else if rstats, rerr := old.cat.AdvanceRetro(g); rerr == nil {
			// A retroactive ingest landed new points inside the existing
			// timeline: the catalog spliced its stores around the dirty
			// positions instead of rebuilding the world. Plans that could
			// observe anything at or past the first dirty position are
			// evicted; feedback cardinalities are keyed by interval labels
			// whose positions just shifted, so they restart from scratch.
			st = &state{g: g, cat: old.cat, gen: gen}
			s.cur.Store(st)
			s.plans.Advance(g, old.cat, rstats.FirstDirty)
			s.fback.Reset()
			s.retroApplies.Inc()
			s.storeRebuilds.Add(int64(rstats.Rebuilt))
			s.observeVisibility(gen)
			s.log.Info("serving state advanced (retroactive)", "points", gen,
				"inserted", rstats.Inserted, "first_dirty", rstats.FirstDirty,
				"stores_extended", rstats.Extended, "stores_rebuilt", rstats.Rebuilt)
			return st, nil
		} else {
			s.log.Warn("catalog delta refused, rebuilding", "points", gen,
				"append_err", aerr, "retro_err", rerr)
		}
	}
	if old != nil {
		// Fold the retiring catalog's counters into the cumulative base so
		// /metrics stays monotonic across rebuilds.
		os := old.cat.Stats()
		s.retired.Scratch += os.Scratch
		s.retired.Cached += os.Cached
		s.retired.TDistributive += os.TDistributive
		s.retired.DDistributive += os.DDistributive
		s.retired.CacheEvictions += os.CacheEvictions
		s.retired.CacheDeduped += os.CacheDeduped
		s.fullRebuilds.Inc()
	}
	st = &state{g: g, cat: s.newCatalog(g), gen: gen}
	s.cur.Store(st)
	s.plans.Reset(g, st.cat)
	// Cardinalities observed against the replaced snapshot no longer
	// describe anything; append-only advances (above) keep them instead.
	s.fback.Reset()
	s.observeVisibility(gen)
	s.log.Info("serving state rebuilt", "points", gen, "nodes", g.NumNodes(), "edges", g.NumEdges())
	return st, nil
}

// visEntry is one acknowledged ingest awaiting visibility: the series
// generation it produced and the acknowledgement time.
type visEntry struct {
	gen int
	at  time.Time
}

// trackVisibility records the acknowledgement of an ingest that grew the
// series to gen points; the pending entry is resolved by the swap that
// makes that generation queryable.
func (s *Server) trackVisibility(gen int) {
	if s.visibility == nil {
		return
	}
	s.visMu.Lock()
	s.visPending = append(s.visPending, visEntry{gen: gen, at: time.Now()})
	s.visMu.Unlock()
}

// observeVisibility resolves every pending ingest at or below the
// generation that just became queryable into the freshness histogram.
func (s *Server) observeVisibility(gen int) {
	if s.visibility == nil {
		return
	}
	now := time.Now()
	s.visMu.Lock()
	kept := s.visPending[:0]
	for _, e := range s.visPending {
		if e.gen <= gen {
			s.visibility.Observe(now.Sub(e.at).Seconds())
		} else {
			kept = append(kept, e)
		}
	}
	s.visPending = kept
	s.visMu.Unlock()
}

// catalogStats returns the cumulative catalog counters: the live catalog
// plus every retired one.
func (s *Server) catalogStats() materialize.Stats {
	// Sample the retired base and the live catalog as one consistent pair:
	// rebuilds fold a retiring catalog into s.retired under rebuildMu, so
	// reading s.cur after releasing the lock could miss a just-retired
	// catalog's counters and make the summed totals transiently decrease.
	s.rebuildMu.Lock()
	defer s.rebuildMu.Unlock()
	base := s.retired
	if st := s.cur.Load(); st != nil {
		cs := st.cat.Stats()
		base.Scratch += cs.Scratch
		base.Cached += cs.Cached
		base.TDistributive += cs.TDistributive
		base.DDistributive += cs.DDistributive
		base.CacheEvictions += cs.CacheEvictions
		base.CacheDeduped += cs.CacheDeduped
		base.CacheEntries = cs.CacheEntries
		base.CacheBytes = cs.CacheBytes
		base.Stores = cs.Stores
	}
	return base
}

// registerMetrics wires the serving metrics taxonomy:
//
//	graphtempod_requests_total{endpoint,code}   counter
//	graphtempod_request_seconds{endpoint}       histogram
//	graphtempod_shed_total{endpoint}            counter (429 overflow)
//	graphtempod_inflight                        gauge (admitted weight)
//	graphtempod_admission_queue                 gauge
//	graphtempod_panics_total                    counter
//	graphtempod_catalog_answers_total{source}   counter (hit/miss by source)
//	graphtempod_catalog_cache_{entries,bytes}   gauges
//	graphtempod_explorer_evaluations_total      counter (engine hot path)
//	graphtempod_kernel_selections_total{kernel} counter (engine hot path)
//	graphtempod_planner_selections_total{op}    counter (planner choices)
//	graphtempod_planner_feedback_total{kind}    counter (feedback records)
//	graphtempod_plan_cache_total{result}        counter (hit/miss)
//	graphtempod_ingested_points                 gauge (stream mode)
//	graphtempod_catalog_delta_applies_total     counter (stream mode)
//	graphtempod_catalog_full_rebuilds_total     counter (stream mode)
//	graphtempod_catalog_store_rebuilds_total    counter (stream mode)
//	graphtempod_ingest_visibility_seconds       histogram (stream mode)
//	graphtempod_uptime_seconds                  gauge
//
// With durable storage (stream mode + -data-dir) the persistence family is
// added:
//
//	graphtempod_storage_recovery_records_total  counter (snapshot + WAL)
//	graphtempod_storage_recovery_seconds        gauge
//	graphtempod_storage_recovery_truncated_bytes gauge (torn tail)
//	graphtempod_storage_snapshot_generation     gauge
//	graphtempod_storage_wal_{records,bytes}_total counters
//	graphtempod_storage_fsyncs_total            counter
//	graphtempod_storage_coalesced_syncs_total   counter (group commit)
//	graphtempod_storage_checkpoints_total       counter
//	graphtempod_storage_checkpoint_errors_total counter
//	graphtempod_storage_last_checkpoint_ms      gauge
func (s *Server) registerMetrics() {
	r := s.reg
	r.GaugeFunc("graphtempod_inflight", "Admitted request weight currently executing.",
		func() float64 { return float64(s.adm.used()) })
	r.GaugeFunc("graphtempod_admission_queue", "Requests waiting for admission.",
		func() float64 { return float64(s.adm.queued()) })
	r.RegisterCounter("graphtempod_panics_total", "Handler panics recovered.", &s.panics)
	for _, src := range []struct {
		name string
		fn   func(materialize.Stats) int64
	}{
		{"scratch", func(st materialize.Stats) int64 { return st.Scratch }},
		{"cached", func(st materialize.Stats) int64 { return st.Cached }},
		{"t-distributive", func(st materialize.Stats) int64 { return st.TDistributive }},
		{"d-distributive", func(st materialize.Stats) int64 { return st.DDistributive }},
	} {
		fn := src.fn
		r.CounterFunc("graphtempod_catalog_answers_total",
			"Catalog answers by derivation source (cached = cache hit, others = miss path).",
			func() float64 { return float64(fn(s.catalogStats())) },
			metrics.Label{Key: "source", Value: src.name})
	}
	r.GaugeFunc("graphtempod_catalog_cache_entries", "Cached aggregate results.",
		func() float64 { return float64(s.catalogStats().CacheEntries) })
	r.GaugeFunc("graphtempod_catalog_cache_bytes", "Approximate bytes of cached results.",
		func() float64 { return float64(s.catalogStats().CacheBytes) })
	r.CounterFunc("graphtempod_catalog_cache_evictions_total", "Results evicted from the serving cache.",
		func() float64 { return float64(s.catalogStats().CacheEvictions) })
	r.RegisterCounter("graphtempod_explorer_evaluations_total",
		"Exploration candidate evaluations across all requests.", &explore.TotalEvaluations)
	r.RegisterCounter("graphtempod_kernel_selections_total",
		"Aggregation kernel selections.", &agg.KernelSelections.Dense,
		metrics.Label{Key: "kernel", Value: "dense"})
	r.RegisterCounter("graphtempod_kernel_selections_total", "",
		&agg.KernelSelections.Static, metrics.Label{Key: "kernel", Value: "static"})
	r.RegisterCounter("graphtempod_kernel_selections_total", "",
		&agg.KernelSelections.Varying, metrics.Label{Key: "kernel", Value: "varying"})
	plannerHelp := "Physical operators selected by the query planner, counted per plan execution."
	for _, sel := range []struct {
		op string
		c  *metrics.Counter
	}{
		{"catalog-union", &plan.Selections.CatalogUnion},
		{"dense-agg", &plan.Selections.DenseAgg},
		{"map-agg", &plan.Selections.MapAgg},
		{"measure-agg", &plan.Selections.MeasureAgg},
		{"filtered-agg", &plan.Selections.FilteredAgg},
		{"fast-explore", &plan.Selections.FastExplore},
		{"seed-explore", &plan.Selections.SeedExplore},
		{"tune-explore", &plan.Selections.TuneExplore},
		{"top", &plan.Selections.Top},
		{"evolve", &plan.Selections.Evolve},
		{"timeline", &plan.Selections.Timeline},
		{"partial-agg", &plan.Selections.PartialAgg},
		{"shard-scatter", &plan.Selections.ShardScatter},
		{"gather-merge", &plan.Selections.GatherMerge},
		{"events-scan", &plan.Selections.EventsScan},
		{"events-sweep", &plan.Selections.EventsSweep},
		{"paths-frontier", &plan.Selections.PathsFront},
		{"paths-naive", &plan.Selections.PathsNaive},
		{"trend-catalog", &plan.Selections.TrendCatalog},
		{"trend-scan", &plan.Selections.TrendScan},
	} {
		r.RegisterCounter("graphtempod_planner_selections_total", plannerHelp,
			sel.c, metrics.Label{Key: "op", Value: sel.op})
		plannerHelp = ""
	}
	r.RegisterCounter("graphtempod_plan_cache_total",
		"Plan cache lookups by result (a hit skips resolution and operator selection).",
		&plan.CacheHits, metrics.Label{Key: "result", Value: "hit"})
	r.RegisterCounter("graphtempod_plan_cache_total", "",
		&plan.CacheMisses, metrics.Label{Key: "result", Value: "miss"})
	r.RegisterCounter("graphtempod_planner_feedback_total",
		"Runtime observations recorded into the planner feedback loop.",
		&plan.Feedbacks.Cardinality, metrics.Label{Key: "kind", Value: "cardinality"})
	r.RegisterCounter("graphtempod_planner_feedback_total", "",
		&plan.Feedbacks.RunRatio, metrics.Label{Key: "kind", Value: "run-ratio"})
	if s.series != nil {
		r.GaugeFunc("graphtempod_ingested_points", "Time points ingested.",
			func() float64 { return float64(s.series.Len()) })
		r.RegisterCounter("graphtempod_catalog_delta_applies_total",
			"Serving snapshots advanced in place by incremental delta application.",
			&s.deltaApplies)
		r.RegisterCounter("graphtempod_catalog_retro_applies_total",
			"Serving snapshots advanced in place by retroactive splice (dirty-range invalidation).",
			&s.retroApplies)
		r.GaugeFunc("graphtempod_history_cache_entries", "Reconstructed historical states resident.",
			func() float64 { return float64(s.hist.Stats().Entries) })
		r.GaugeFunc("graphtempod_history_cache_bytes", "Approximate bytes of reconstructed historical states.",
			func() float64 { return float64(s.hist.Stats().Bytes) })
		r.RegisterCounter("graphtempod_catalog_full_rebuilds_total",
			"Serving snapshots replaced by a from-scratch rebuild after the initial build.",
			&s.fullRebuilds)
		r.RegisterCounter("graphtempod_catalog_store_rebuilds_total",
			"Materialized stores rebuilt during delta application (attribute dictionary grew).",
			&s.storeRebuilds)
		s.visibility = r.Histogram("graphtempod_ingest_visibility_seconds",
			"Latency from ingest acknowledgement to the point being queryable.",
			[]float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 1, 5})
	}
	if eng := s.storage; eng != nil {
		r.CounterFunc("graphtempod_storage_recovery_records_total",
			"Records recovered at boot: snapshot points plus replayed WAL records.",
			func() float64 { ri := eng.Recovery(); return float64(ri.SnapshotPoints + ri.WALRecords) })
		r.GaugeFunc("graphtempod_storage_recovery_seconds",
			"Wall-clock duration of boot recovery.",
			func() float64 { return eng.Recovery().Elapsed.Seconds() })
		r.GaugeFunc("graphtempod_storage_recovery_truncated_bytes",
			"Torn WAL tail bytes discarded at boot.",
			func() float64 { return float64(eng.Recovery().TruncatedBytes) })
		r.GaugeFunc("graphtempod_storage_snapshot_generation",
			"Current snapshot generation (also the active WAL segment number).",
			func() float64 { return float64(eng.Stats().Generation) })
		r.GaugeFunc("graphtempod_storage_txn_seq",
			"Transaction-time watermark: ingest records ever applied (the upper bound of AS OF).",
			func() float64 { return float64(eng.TxnSeq()) })
		r.CounterFunc("graphtempod_storage_wal_records_total", "WAL records appended since boot.",
			func() float64 { return float64(eng.Stats().WALRecords) })
		r.CounterFunc("graphtempod_storage_wal_bytes_total", "WAL bytes appended since boot.",
			func() float64 { return float64(eng.Stats().WALBytes) })
		r.CounterFunc("graphtempod_storage_fsyncs_total", "WAL fsync calls.",
			func() float64 { return float64(eng.Stats().Fsyncs) })
		r.CounterFunc("graphtempod_storage_coalesced_syncs_total",
			"Appends whose durability rode another append's fsync (group commit).",
			func() float64 { return float64(eng.Stats().CoalescedSyncs) })
		r.CounterFunc("graphtempod_storage_checkpoints_total",
			"Completed WAL-to-snapshot compactions.",
			func() float64 { return float64(eng.Stats().Checkpoints) })
		r.CounterFunc("graphtempod_storage_checkpoint_errors_total",
			"Checkpoint attempts that failed (serving continues on the previous generation).",
			func() float64 { return float64(eng.Stats().CheckpointErrors) })
		r.GaugeFunc("graphtempod_storage_last_checkpoint_ms",
			"Duration of the most recent successful checkpoint in milliseconds.",
			func() float64 { return eng.Stats().LastCheckpointMs })
	}
	r.GaugeFunc("graphtempod_uptime_seconds", "Seconds since server start.",
		func() float64 { return time.Since(s.started).Seconds() })
}

// reqCounter returns (registering on first use) the requests_total series
// for an endpoint/status pair.
func (s *Server) reqCounter(endpoint string, code int) *metrics.Counter {
	key := endpoint + "\x00" + strconv.Itoa(code)
	s.reqMu.Lock()
	defer s.reqMu.Unlock()
	c, ok := s.reqCount[key]
	if !ok {
		c = s.reg.Counter("graphtempod_requests_total", "Requests by endpoint and status code.",
			metrics.Label{Key: "endpoint", Value: endpoint},
			metrics.Label{Key: "code", Value: strconv.Itoa(code)})
		s.reqCount[key] = c
	}
	return c
}

func (s *Server) latencyHist(endpoint string) *metrics.Histogram {
	s.reqMu.Lock()
	defer s.reqMu.Unlock()
	h, ok := s.latency[endpoint]
	if !ok {
		h = s.reg.Histogram("graphtempod_request_seconds", "Request latency in seconds.", nil,
			metrics.Label{Key: "endpoint", Value: endpoint})
		s.latency[endpoint] = h
	}
	return h
}

func (s *Server) shedCounter(endpoint string) *metrics.Counter {
	s.reqMu.Lock()
	defer s.reqMu.Unlock()
	c, ok := s.shed[endpoint]
	if !ok {
		c = s.reg.Counter("graphtempod_shed_total", "Requests shed with 429 by admission control.",
			metrics.Label{Key: "endpoint", Value: endpoint})
		s.shed[endpoint] = c
	}
	return c
}

// routes mounts every endpoint with its middleware chain.
func (s *Server) routes() {
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	s.mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if s.draining.Load() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		st, err := s.current()
		if err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		// ?gen=N lets ingest clients poll for a specific series generation
		// becoming queryable (static mode is always at its only generation).
		if q := r.URL.Query().Get("gen"); q != "" && s.series != nil {
			want, perr := strconv.Atoi(q)
			if perr != nil {
				http.Error(w, "gen must be an integer", http.StatusBadRequest)
				return
			}
			if st.gen < want {
				http.Error(w, fmt.Sprintf("at generation %d, waiting for %d", st.gen, want),
					http.StatusServiceUnavailable)
				return
			}
		}
		fmt.Fprintln(w, "ready")
	})
	s.mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.reg.WritePrometheus(w)
	})
	s.mux.Handle("POST /v1/aggregate", s.api("aggregate", s.handleAggregate))
	s.mux.Handle("POST /v1/explore", s.api("explore", s.handleExplore))
	s.mux.Handle("POST /v1/tgql", s.api("tgql", s.handleTGQL))
	s.mux.Handle("POST /v1/explain", s.api("explain", s.handleExplain))
	s.mux.Handle("POST /v1/ingest", s.api("ingest", s.handleIngest))
	s.mux.Handle("POST /v1/partial/aggregate", s.api("partial", s.handlePartialAggregate))
	s.mux.Handle("POST /v1/events", s.api("events", s.handleEvents))
	s.mux.Handle("POST /v1/paths", s.api("paths", s.handlePaths))
	s.mux.Handle("POST /v1/trend", s.api("trend", s.handleTrend))
	// Cluster control plane: status/labels serve the router's health, lag
	// and shard-map probes, the WAL stream feeds replicas and the router's
	// mirror. They bypass admission so probes keep answering under load
	// and during drain.
	s.mux.HandleFunc("GET /v1/status", s.handleStatus)
	s.mux.HandleFunc("GET /v1/labels", s.handleLabels)
	s.mux.HandleFunc("GET /v1/wal/stream", s.handleWALStream)
}

// statusWriter captures the status code and byte count for logs/metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += n
	return n, err
}

// apiHandler is an endpoint implementation: it returns (status, error);
// on error the middleware writes the JSON error envelope.
type apiHandler func(ctx context.Context, w http.ResponseWriter, r *http.Request) (int, error)

// api wraps an endpoint in the full middleware chain:
// recover → access log + metrics → deadline → admission → handler.
func (s *Server) api(endpoint string, h apiHandler) http.Handler {
	weight := endpointWeight[endpoint]
	hist := s.latencyHist(endpoint)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}

		defer func() {
			if rec := recover(); rec != nil {
				s.panics.Inc()
				buf := make([]byte, 8<<10)
				buf = buf[:runtime.Stack(buf, false)]
				s.log.Error("handler panic", "endpoint", endpoint, "panic", rec, "stack", string(buf))
				if sw.status == 0 {
					writeError(sw, http.StatusInternalServerError, fmt.Errorf("internal error"))
				}
			}
			elapsed := time.Since(start)
			hist.Observe(elapsed.Seconds())
			s.reqCounter(endpoint, sw.status).Inc()
			s.log.Info("request",
				"endpoint", endpoint, "method", r.Method, "path", r.URL.Path,
				"status", sw.status, "ms", float64(elapsed.Microseconds())/1000,
				"bytes", sw.bytes, "remote", r.RemoteAddr)
		}()

		ctx, cancel := context.WithTimeout(r.Context(), s.deadlineFor(r))
		defer cancel()

		if err := s.adm.acquire(ctx, weight); err != nil {
			if err == ErrOverloaded {
				s.shedCounter(endpoint).Inc()
				sw.Header().Set("Retry-After", "1")
				writeError(sw, http.StatusTooManyRequests, err)
				return
			}
			writeError(sw, statusForCtx(err), err)
			return
		}
		defer s.adm.release(weight)

		if status, err := h(ctx, sw, r); err != nil {
			writeError(sw, status, err)
		}
	})
}

// deadlineFor resolves the request deadline: the server cap, lowered by a
// client-supplied X-Deadline-Ms header when present and valid.
func (s *Server) deadlineFor(r *http.Request) time.Duration {
	d := s.cfg.RequestTimeout
	if h := r.Header.Get("X-Deadline-Ms"); h != "" {
		if ms, err := strconv.ParseInt(h, 10, 64); err == nil && ms > 0 {
			if cd := time.Duration(ms) * time.Millisecond; cd < d {
				d = cd
			}
		}
	}
	return d
}

// statusForCtx maps a context error to the HTTP status reported for a
// request abandoned on deadline or client disconnect.
func statusForCtx(err error) int {
	if errors.Is(err, context.DeadlineExceeded) {
		return http.StatusGatewayTimeout
	}
	return 499 // client closed request (nginx convention)
}

// errorBody is the unified JSON error envelope of every non-2xx API
// response — {"error":{"code","message"}} — shared verbatim by the
// cluster router so clients see one contract whichever tier answers.
type errorBody struct {
	Error ErrorDetail `json:"error"`
}

// ErrorDetail carries the stable machine-readable code (derived from the
// HTTP status) and the human-readable message.
type ErrorDetail struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// ErrorCode maps an HTTP status to its envelope code.
func ErrorCode(status int) string {
	switch status {
	case http.StatusBadRequest:
		return "bad_request"
	case http.StatusNotFound:
		return "not_found"
	case http.StatusConflict:
		return "conflict"
	case http.StatusRequestEntityTooLarge:
		return "body_too_large"
	case http.StatusTooManyRequests:
		return "overloaded"
	case 499:
		return "client_closed"
	case http.StatusServiceUnavailable:
		return "unavailable"
	case http.StatusGatewayTimeout:
		return "deadline_exceeded"
	}
	if status >= 500 {
		return "internal"
	}
	return "bad_request"
}

// WriteError writes the unified error envelope. Exported for the cluster
// router, which reuses it for errors it originates itself.
func WriteError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorBody{Error: ErrorDetail{Code: ErrorCode(status), Message: err.Error()}})
}

func writeError(w http.ResponseWriter, status int, err error) { WriteError(w, status, err) }

func writeJSON(w http.ResponseWriter, v any) (int, error) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		return http.StatusInternalServerError, nil // headers already sent
	}
	return http.StatusOK, nil
}
