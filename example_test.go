package graphtempo_test

import (
	"fmt"

	graphtempo "repro"
)

// ExampleAggregate reproduces Fig. 3d of the paper: distinct aggregation
// of the union graph of (t0, t1) on (gender, publications).
func ExampleAggregate() {
	g := graphtempo.PaperExample()
	tl := g.Timeline()
	union := graphtempo.Union(g, tl.Point(0), tl.Point(1))
	schema, _ := graphtempo.SchemaByName(g, "gender", "publications")
	ag := graphtempo.Aggregate(union, schema, graphtempo.Distinct)
	f1, _ := schema.Encode("f", "1")
	fmt.Printf("DIST weight of (f,1): %d\n", ag.NodeWeight(f1))
	// Output:
	// DIST weight of (f,1): 3
}

// ExampleAggregateEvolution reproduces Fig. 4b: the (f,1) authors show
// one stable, one new and one vanished appearance between t0 and t1.
func ExampleAggregateEvolution() {
	g := graphtempo.PaperExample()
	tl := g.Timeline()
	schema, _ := graphtempo.SchemaByName(g, "gender", "publications")
	ev := graphtempo.AggregateEvolution(g, tl.Point(0), tl.Point(1),
		schema, graphtempo.Distinct, nil)
	f1, _ := schema.Encode("f", "1")
	w := ev.NodeWeights(f1)
	fmt.Printf("(f,1): St=%d Gr=%d Shr=%d\n", w.St, w.Gr, w.Shr)
	// Output:
	// (f,1): St=1 Gr=1 Shr=1
}

// ExampleExplorer_Explore finds the minimal interval pairs with at least
// two stable edges in the running example.
func ExampleExplorer_Explore() {
	g := graphtempo.PaperExample()
	schema, _ := graphtempo.SchemaByName(g, "gender")
	ex := &graphtempo.Explorer{
		Graph:  g,
		Schema: schema,
		Kind:   graphtempo.Distinct,
		Result: graphtempo.TotalEdges,
	}
	for _, p := range ex.Explore(graphtempo.Stability,
		graphtempo.UnionSemantics, graphtempo.ExtendNew, 2) {
		fmt.Println(p)
	}
	// Output:
	// t0 → t1 (2 events)
}

// ExampleDifference shows the asymmetry of the difference operator:
// t0 − t1 captures deletions, t1 − t0 captures additions.
func ExampleDifference() {
	g := graphtempo.PaperExample()
	tl := g.Timeline()
	gone := graphtempo.Difference(g, tl.Point(0), tl.Point(1))
	new := graphtempo.Difference(g, tl.Point(1), tl.Point(0))
	fmt.Printf("deleted edges: %d, new edges: %d\n", gone.NumEdges(), new.NumEdges())
	// Output:
	// deleted edges: 1, new edges: 1
}

// ExampleCoarsen zooms the three-point running example out to two coarse
// periods.
func ExampleCoarsen() {
	g := graphtempo.PaperExample()
	spec, _ := graphtempo.UniformGroups(g.Timeline(), 2)
	coarse, _ := graphtempo.Coarsen(g, spec)
	stats := graphtempo.ComputeStats(coarse)
	for i, label := range stats.Labels {
		fmt.Printf("%s: %d nodes, %d edges\n", label, stats.Nodes[i], stats.Edges[i])
	}
	// Output:
	// t0..t1: 4 nodes, 4 edges
	// t2: 3 nodes, 3 edges
}
