// Benchmarks regenerating every table and figure of the paper's §5
// evaluation, plus ablations of the design decisions listed in DESIGN.md.
//
// One benchmark (or benchmark group) exists per table/figure; the gtbench
// command produces the full per-x-axis series behind each figure, while
// these testing.B benchmarks measure the figure's characteristic workload
// so regressions are caught by `go test -bench=.`.
//
// Dataset scale: benchmarks run on scaled-down datasets (DBLP ×0.25,
// MovieLens ×0.05) so the full suite completes in minutes. Set
// GT_BENCH_SCALE=<v> to run BOTH datasets at scale v instead —
// GT_BENCH_SCALE=1 benchmarks at the paper's Table 3/4 sizes.
package graphtempo_test

import (
	"fmt"
	"os"
	"strconv"
	"sync"
	"testing"

	graphtempo "repro"
	"repro/internal/agg"
	"repro/internal/explore"
	"repro/internal/larray"
)

var (
	benchOnce sync.Once
	benchDBLP *graphtempo.Graph
	benchML   *graphtempo.Graph
)

func benchGraphs(b *testing.B) (*graphtempo.Graph, *graphtempo.Graph) {
	b.Helper()
	benchOnce.Do(func() {
		dblpScale, mlScale := 0.25, 0.05
		if s := os.Getenv("GT_BENCH_SCALE"); s != "" {
			if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 {
				dblpScale, mlScale = v, v
			}
		}
		benchDBLP = graphtempo.DBLPScaled(1, dblpScale)
		benchML = graphtempo.MovieLensScaled(1, mlScale)
	})
	return benchDBLP, benchML
}

func mustSchema(b *testing.B, g *graphtempo.Graph, names ...string) *graphtempo.AggSchema {
	b.Helper()
	s, err := graphtempo.SchemaByName(g, names...)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkTable3DBLPStats regenerates Table 3 (per-year node/edge counts).
func BenchmarkTable3DBLPStats(b *testing.B) {
	g, _ := benchGraphs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		graphtempo.ComputeStats(g)
	}
}

// BenchmarkTable4MovieLensStats regenerates Table 4.
func BenchmarkTable4MovieLensStats(b *testing.B) {
	_, m := benchGraphs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		graphtempo.ComputeStats(m)
	}
}

// BenchmarkFig5aTimePointAggDBLP measures DIST aggregation of the busiest
// DBLP year per attribute combination (Fig. 5a).
func BenchmarkFig5aTimePointAggDBLP(b *testing.B) {
	g, _ := benchGraphs(b)
	last := graphtempo.Time(g.Timeline().Len() - 1)
	v := graphtempo.At(g, last)
	for _, names := range [][]string{{"gender"}, {"publications"}, {"gender", "publications"}} {
		s := mustSchema(b, g, names...)
		name := ""
		for i, n := range names {
			if i > 0 {
				name += "+"
			}
			name += n[:1]
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				graphtempo.Aggregate(v, s, graphtempo.Distinct)
			}
		})
	}
}

// BenchmarkFig5bTimePointAggMovieLens measures DIST aggregation of the
// August co-rating graph per attribute combination (Fig. 5b).
func BenchmarkFig5bTimePointAggMovieLens(b *testing.B) {
	_, m := benchGraphs(b)
	aug, _ := m.Timeline().TimeOf("Aug")
	v := graphtempo.At(m, aug)
	combos := [][]string{
		{"gender"}, {"age"}, {"occupation"}, {"rating"},
		{"gender", "age"}, {"gender", "age", "rating"},
		{"gender", "age", "occupation", "rating"},
	}
	for _, names := range combos {
		s := mustSchema(b, m, names...)
		name := ""
		for i, n := range names {
			if i > 0 {
				name += "+"
			}
			name += n[:1]
		}
		_ = s
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				graphtempo.Aggregate(v, s, graphtempo.Distinct)
			}
		})
	}
}

// BenchmarkFig6UnionAgg measures union over the whole DBLP timeline plus
// DIST/ALL aggregation on the static and the time-varying attribute
// (Fig. 6).
func BenchmarkFig6UnionAgg(b *testing.B) {
	g, _ := benchGraphs(b)
	tl := g.Timeline()
	whole := tl.All()
	cases := []struct {
		name string
		attr string
		kind graphtempo.AggKind
	}{
		{"static-DIST", "gender", graphtempo.Distinct},
		{"static-ALL", "gender", graphtempo.All},
		{"varying-DIST", "publications", graphtempo.Distinct},
		{"varying-ALL", "publications", graphtempo.All},
	}
	for _, c := range cases {
		s := mustSchema(b, g, c.attr)
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				v := graphtempo.Union(g, whole, whole)
				graphtempo.Aggregate(v, s, c.kind)
			}
		})
	}
}

// BenchmarkFig7IntersectionAgg measures the iterated intersection over
// [2000,2017] (the longest non-empty one) plus DIST aggregation (Fig. 7).
func BenchmarkFig7IntersectionAgg(b *testing.B) {
	g, _ := benchGraphs(b)
	tl := g.Timeline()
	iv := tl.Range(0, 17)
	for _, attr := range []string{"gender", "publications"} {
		s := mustSchema(b, g, attr)
		b.Run(attr, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				v := graphtempo.StabilityView(g, graphtempo.ForAllOf(iv), graphtempo.ForAllOf(iv))
				graphtempo.Aggregate(v, s, graphtempo.Distinct)
			}
		})
	}
}

// BenchmarkFig8DifferenceOldNew measures Told(∪) − Tnew over the widest
// Told plus aggregation (Fig. 8).
func BenchmarkFig8DifferenceOldNew(b *testing.B) {
	g, _ := benchGraphs(b)
	tl := g.Timeline()
	last := graphtempo.Time(tl.Len() - 1)
	told := graphtempo.Exists(tl.Range(0, last-1))
	tnew := graphtempo.Exists(tl.Point(last))
	for _, attr := range []string{"gender", "publications"} {
		s := mustSchema(b, g, attr)
		b.Run(attr, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				v := graphtempo.DifferenceView(g, told, tnew)
				graphtempo.Aggregate(v, s, graphtempo.Distinct)
			}
		})
	}
}

// BenchmarkFig9DifferenceNewOld measures the cheaper opposite difference
// Tnew − Told(∪) (Fig. 9).
func BenchmarkFig9DifferenceNewOld(b *testing.B) {
	g, _ := benchGraphs(b)
	tl := g.Timeline()
	last := graphtempo.Time(tl.Len() - 1)
	told := graphtempo.Exists(tl.Range(0, last-1))
	tnew := graphtempo.Exists(tl.Point(last))
	for _, attr := range []string{"gender", "publications"} {
		s := mustSchema(b, g, attr)
		b.Run(attr, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				v := graphtempo.DifferenceView(g, tnew, told)
				graphtempo.Aggregate(v, s, graphtempo.Distinct)
			}
		})
	}
}

// BenchmarkFig10MaterializedUnion compares union-ALL aggregation from
// scratch against T-distributive composition from the per-year store at
// the longest interval (Fig. 10), across the three composition engines —
// linear map-merge, O(log) sparse-table, O(1) prefix-sum — plus the
// concurrent catalog under parallel clients.
func BenchmarkFig10MaterializedUnion(b *testing.B) {
	g, _ := benchGraphs(b)
	tl := g.Timeline()
	whole := tl.All()
	for _, attr := range []string{"gender", "publications"} {
		s := mustSchema(b, g, attr)
		store := graphtempo.NewMatStore(g, s)
		store.UnionAll(whole) // build the dense tables outside the timings
		b.Run(attr+"-scratch", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				graphtempo.Aggregate(graphtempo.Union(g, whole, whole), s, graphtempo.All)
			}
		})
		b.Run(attr+"-linear", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				store.UnionAllLinear(whole)
			}
		})
		b.Run(attr+"-sparse", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				store.UnionAllLog(whole)
			}
		})
		b.Run(attr+"-prefix", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				store.UnionAll(whole)
			}
		})
		attrID := g.MustAttr(attr)
		cat := graphtempo.NewMatCatalog(g)
		if _, err := cat.Materialize(attrID); err != nil {
			b.Fatal(err)
		}
		ivs := make([]graphtempo.Interval, tl.Len())
		for i := range ivs {
			ivs[i] = tl.Range(0, graphtempo.Time(i))
		}
		b.Run(attr+"-catalog-parallel", func(b *testing.B) {
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					if _, _, err := cat.UnionAll(ivs[i%len(ivs)], attrID); err != nil {
						b.Fatal(err)
					}
					i++
				}
			})
		})
	}
}

// BenchmarkFig11AttributeRollup compares computing the gender aggregate of
// one year from scratch against rolling it up from the materialized
// (gender, publications) aggregate (Fig. 11).
func BenchmarkFig11AttributeRollup(b *testing.B) {
	g, _ := benchGraphs(b)
	last := graphtempo.Time(g.Timeline().Len() - 1)
	v := graphtempo.At(g, last)
	fine := graphtempo.Aggregate(v, mustSchema(b, g, "gender", "publications"), graphtempo.Distinct)
	gender := g.MustAttr("gender")
	gOnly := mustSchema(b, g, "gender")
	b.Run("scratch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			graphtempo.Aggregate(v, gOnly, graphtempo.Distinct)
		}
	})
	b.Run("rollup", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := graphtempo.Rollup(fine, gender); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig12EvolutionGender measures the aggregated evolution graph of
// 2010 vs the 2000s for high-activity authors (Fig. 12).
func BenchmarkFig12EvolutionGender(b *testing.B) {
	g, _ := benchGraphs(b)
	tl := g.Timeline()
	s := mustSchema(b, g, "gender")
	pubs := g.MustAttr("publications")
	high := func(n graphtempo.NodeID, t graphtempo.Time) bool {
		v := g.ValueString(pubs, n, t)
		return len(v) > 1 || (len(v) == 1 && v[0] > '4') // >4, domain 1..18
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		graphtempo.AggregateEvolution(g, tl.Range(0, 9), tl.Point(10), s, graphtempo.Distinct, high)
	}
}

// benchExplore runs the three §5.2 exploration cases for an f-f edge
// result on the given graph.
func benchExplore(b *testing.B, g *graphtempo.Graph, female string) {
	s := mustSchema(b, g, "gender")
	ff, err := graphtempo.EdgeTupleResult(s, []string{female}, []string{female})
	if err != nil {
		b.Fatal(err)
	}
	ex := &graphtempo.Explorer{Graph: g, Schema: s, Kind: graphtempo.Distinct, Result: ff}
	cases := []struct {
		name  string
		event graphtempo.EvolutionClass
		sem   graphtempo.Semantics
		ext   graphtempo.Extend
	}{
		{"stability-max", graphtempo.Stability, graphtempo.IntersectionSemantics, graphtempo.ExtendNew},
		{"growth-min", graphtempo.Growth, graphtempo.UnionSemantics, graphtempo.ExtendNew},
		{"shrinkage-min", graphtempo.Shrinkage, graphtempo.UnionSemantics, graphtempo.ExtendOld},
	}
	for _, c := range cases {
		var k int64
		if c.sem == graphtempo.UnionSemantics {
			_, k = ex.InitK(c.event)
		} else {
			k, _ = ex.InitK(c.event)
		}
		if k < 1 {
			k = 1
		}
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ex.Explore(c.event, c.sem, c.ext, k)
			}
		})
	}
}

// BenchmarkFig13ExploreMovieLens measures the Fig. 13 exploration cases.
func BenchmarkFig13ExploreMovieLens(b *testing.B) {
	_, m := benchGraphs(b)
	benchExplore(b, m, "F")
}

// BenchmarkFig14ExploreDBLP measures the Fig. 14 exploration cases.
func BenchmarkFig14ExploreDBLP(b *testing.B) {
	g, _ := benchGraphs(b)
	benchExplore(b, g, "f")
}

// --- Ablations (DESIGN.md §2) ---

// BenchmarkAblationTupleKeys compares the dictionary-encoded mixed-radix
// group keys of the optimized engine against string-concatenation keys.
func BenchmarkAblationTupleKeys(b *testing.B) {
	g, _ := benchGraphs(b)
	last := graphtempo.Time(g.Timeline().Len() - 1)
	v := graphtempo.At(g, last)
	s := mustSchema(b, g, "gender", "publications")
	b.Run("mixed-radix", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			graphtempo.Aggregate(v, s, graphtempo.Distinct)
		}
	})
	b.Run("string-keys", func(b *testing.B) {
		gender := g.MustAttr("gender")
		pubs := g.MustAttr("publications")
		tupleAt := func(n graphtempo.NodeID, t graphtempo.Time) string {
			return g.ValueString(gender, n, t) + "," + g.ValueString(pubs, n, t)
		}
		for i := 0; i < b.N; i++ {
			nodes := make(map[string]int64)
			v.ForEachNode(func(n graphtempo.NodeID) {
				seen := make(map[string]bool, 2)
				v.NodeTimes(n).ForEach(func(t int) {
					key := tupleAt(n, graphtempo.Time(t))
					if !seen[key] {
						seen[key] = true
						nodes[key]++
					}
				})
			})
			edges := make(map[string]int64)
			v.ForEachEdge(func(e graphtempo.EdgeID) {
				ep := g.Edge(e)
				seen := make(map[string]bool, 2)
				v.EdgeTimes(e).ForEach(func(t int) {
					key := tupleAt(ep.U, graphtempo.Time(t)) + "→" + tupleAt(ep.V, graphtempo.Time(t))
					if !seen[key] {
						seen[key] = true
						edges[key]++
					}
				})
			})
		}
	})
}

// BenchmarkAblationCopyVsView compares the view-based optimized engine
// against the paper-literal copy-out labeled-array engine on the same
// union + DIST aggregation workload.
func BenchmarkAblationCopyVsView(b *testing.B) {
	g, _ := benchGraphs(b)
	tl := g.Timeline()
	iv := tl.Range(0, 4)
	s := mustSchema(b, g, "gender", "publications")
	b.Run("view-engine", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			v := graphtempo.Union(g, iv, iv)
			graphtempo.Aggregate(v, s, graphtempo.Distinct)
		}
	})
	ga := larray.FromGraph(g)
	b.Run("copy-engine", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			u := ga.Union(iv, iv)
			u.Aggregate([]string{"gender", "publications"}, true)
		}
	})
}

// BenchmarkAblationStaticFastPath measures what the §4.2 static-only fast
// path buys over the general per-time-point path.
func BenchmarkAblationStaticFastPath(b *testing.B) {
	g, _ := benchGraphs(b)
	tl := g.Timeline()
	whole := tl.All()
	s := mustSchema(b, g, "gender")
	v := graphtempo.Union(g, whole, whole)
	b.Run("fast-path", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			graphtempo.Aggregate(v, s, graphtempo.All)
		}
	})
	b.Run("general-path", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			agg.AggregateGeneral(v, s, agg.All)
		}
	})
}

// BenchmarkAblationEdgeIndex compares the general exploration evaluator
// (view construction + aggregation per candidate pair) against the
// per-time-point edge bitmask index on the Fig. 14 stability workload.
func BenchmarkAblationEdgeIndex(b *testing.B) {
	g, _ := benchGraphs(b)
	s := mustSchema(b, g, "gender")
	ff, err := graphtempo.EdgeTupleResult(s, []string{"f"}, []string{"f"})
	if err != nil {
		b.Fatal(err)
	}
	general := &graphtempo.Explorer{Graph: g, Schema: s, Kind: graphtempo.Distinct, Result: ff}
	indexed, err := graphtempo.NewIndexedExplorer(s, []string{"f"}, []string{"f"})
	if err != nil {
		b.Fatal(err)
	}
	k, _ := general.InitK(graphtempo.Stability)
	if k < 1 {
		k = 1
	}
	b.Run("general", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			general.Explore(graphtempo.Stability, graphtempo.IntersectionSemantics, graphtempo.ExtendNew, k)
		}
	})
	b.Run("indexed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			indexed.Explore(graphtempo.Stability, graphtempo.IntersectionSemantics, graphtempo.ExtendNew, k)
		}
	})
}

// BenchmarkAblationCubeQuery compares answering a per-time-point aggregate
// query from scratch against a greedily materialized cube.
func BenchmarkAblationCubeQuery(b *testing.B) {
	_, m := benchGraphs(b)
	aug, _ := m.Timeline().TimeOf("Aug")
	gender := m.MustAttr("gender")
	rating := m.MustAttr("rating")
	empty, err := graphtempo.NewCube(m)
	if err != nil {
		b.Fatal(err)
	}
	warm, err := graphtempo.NewCube(m)
	if err != nil {
		b.Fatal(err)
	}
	if err := warm.MaterializeGreedy(3); err != nil {
		b.Fatal(err)
	}
	b.Run("scratch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := empty.Query(aug, gender, rating); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("materialized", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := warm.Query(aug, gender, rating); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationParallelAggregation measures sharded multi-goroutine
// aggregation against the serial engine on the densest workload (ALL on
// the time-varying attribute over the whole MovieLens timeline).
func BenchmarkAblationParallelAggregation(b *testing.B) {
	_, m := benchGraphs(b)
	tl := m.Timeline()
	v := graphtempo.Union(m, tl.All(), tl.All())
	s, err := agg.ByName(m, "gender", "rating")
	if err != nil {
		b.Fatal(err)
	}
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			agg.Aggregate(v, s, agg.All)
		}
	})
	for _, workers := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				agg.AggregateParallel(v, s, agg.All, workers)
			}
		})
	}
}

// BenchmarkAblationExplorePruning compares the monotonicity-pruned
// exploration against the exhaustive baseline.
func BenchmarkAblationExplorePruning(b *testing.B) {
	g, _ := benchGraphs(b)
	s := mustSchema(b, g, "gender")
	ex := &explore.Explorer{Graph: g, Schema: s, Kind: agg.Distinct, Result: explore.TotalEdges}
	_, k := ex.InitK(graphtempo.Stability)
	if k < 1 {
		k = 1
	}
	b.Run("pruned", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ex.Explore(graphtempo.Stability, graphtempo.UnionSemantics, graphtempo.ExtendNew, k)
		}
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ex.Naive(graphtempo.Stability, graphtempo.UnionSemantics, graphtempo.ExtendNew, k)
		}
	})
}

// BenchmarkExploreFastPath measures the incremental-view exploration fast
// path against the seed evaluator (selector views + fresh aggregation per
// candidate) on paper-scale exploration workloads: one traversal of each
// kind that dominates §5.2 (U-Explore on stability, I-Explore on stability,
// and growth via minimal pairs). "seed" pins NoFastPath, "fast" evaluates
// candidates serially on incremental views, "parallel" adds the bounded
// worker pool at GOMAXPROCS.
func BenchmarkExploreFastPath(b *testing.B) {
	g, _ := benchGraphs(b)
	s := mustSchema(b, g, "gender")
	cases := []struct {
		name  string
		event graphtempo.EvolutionClass
		sem   explore.Semantics
		ext   explore.Extend
		useK  func(min, max int64) int64
	}{
		{"stability-union-min", graphtempo.Stability, graphtempo.UnionSemantics, graphtempo.ExtendNew,
			func(min, max int64) int64 { return max }},
		{"stability-intersect-max", graphtempo.Stability, graphtempo.IntersectionSemantics, graphtempo.ExtendNew,
			func(min, max int64) int64 { return min }},
		{"growth-union-min", graphtempo.Growth, graphtempo.UnionSemantics, graphtempo.ExtendNew,
			func(min, max int64) int64 { return max }},
	}
	for _, tc := range cases {
		ex := &explore.Explorer{Graph: g, Schema: s, Kind: agg.Distinct, Result: explore.TotalEdges}
		min, max := ex.InitK(tc.event)
		k := tc.useK(min, max)
		if k < 1 {
			k = 1
		}
		run := func(noFast bool, workers int) func(*testing.B) {
			return func(b *testing.B) {
				ex.NoFastPath = noFast
				ex.Workers = workers
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					ex.Explore(tc.event, tc.sem, tc.ext, k)
				}
			}
		}
		b.Run(tc.name+"/seed", run(true, 0))
		b.Run(tc.name+"/fast", run(false, 0))
		b.Run(tc.name+"/parallel", run(false, -1))
	}
}
