// Streaming: ingest an evolving graph one time point at a time and keep
// aggregates fresh incrementally — the interactive setting the paper's
// conclusion envisions.
//
// A small "deployments" network arrives month by month: services (nodes,
// with a static team and a time-varying load bucket) and call edges. The
// program registers aggregations up front, appends snapshots, answers
// window queries from the incrementally maintained per-month aggregates
// (T-distributive reuse, §4.3), and finally materializes the full
// temporal graph to run an evolution analysis and emit a DOT drawing.
//
// Run with: go run ./examples/streaming
package main

import (
	"fmt"
	"os"

	graphtempo "repro"
)

func main() {
	series := graphtempo.NewStreamSeries(
		graphtempo.AttrSpec{Name: "team", Kind: graphtempo.Static},
		graphtempo.AttrSpec{Name: "load", Kind: graphtempo.TimeVarying},
	)
	if err := series.RegisterAggregation("by-team", "team"); err != nil {
		panic(err)
	}

	node := func(name, team, load string) graphtempo.StreamNode {
		return graphtempo.StreamNode{
			Label:   name,
			Static:  map[string]string{"team": team},
			Varying: map[string]string{"load": load},
		}
	}
	months := []struct {
		label string
		snap  graphtempo.StreamSnapshot
	}{
		{"jan", graphtempo.StreamSnapshot{
			Nodes: []graphtempo.StreamNode{
				node("api", "core", "high"), node("auth", "core", "mid"),
				node("billing", "payments", "low"),
			},
			Edges: []graphtempo.StreamEdge{{U: "api", V: "auth"}, {U: "api", V: "billing"}},
		}},
		{"feb", graphtempo.StreamSnapshot{
			Nodes: []graphtempo.StreamNode{
				node("api", "core", "high"), node("auth", "core", "high"),
				node("billing", "payments", "mid"), node("ledger", "payments", "low"),
			},
			Edges: []graphtempo.StreamEdge{
				{U: "api", V: "auth"}, {U: "api", V: "billing"}, {U: "billing", V: "ledger"},
			},
		}},
		{"mar", graphtempo.StreamSnapshot{
			Nodes: []graphtempo.StreamNode{
				node("api", "core", "high"), node("auth", "core", "mid"),
				node("ledger", "payments", "mid"), node("report", "data", "low"),
			},
			Edges: []graphtempo.StreamEdge{
				{U: "api", V: "auth"}, {U: "api", V: "ledger"}, {U: "ledger", V: "report"},
			},
		}},
	}
	for _, m := range months {
		if err := series.Append(m.label, m.snap); err != nil {
			panic(err)
		}
		fmt.Printf("ingested %s (%d services, %d calls)\n",
			m.label, len(m.snap.Nodes), len(m.snap.Edges))
	}

	// Window queries answered from the per-month aggregates alone.
	nodes, edges, err := series.WindowUnionAll("by-team", 0, series.Len()-1)
	if err != nil {
		panic(err)
	}
	fmt.Println("\n— Service-month appearances per team, whole window —")
	for team, w := range nodes {
		fmt.Printf("  %s: %d\n", team, w)
	}
	fmt.Println("— Call-month appearances per team pair —")
	for pair, w := range edges {
		fmt.Printf("  %s: %d\n", pair, w)
	}

	// Materialize the full graph for richer analysis.
	g, err := series.Graph()
	if err != nil {
		panic(err)
	}
	tl := g.Timeline()
	team, err := graphtempo.SchemaByName(g, "team")
	if err != nil {
		panic(err)
	}
	ev := graphtempo.AggregateEvolution(g, tl.Range(0, 1), tl.Point(2),
		team, graphtempo.Distinct, nil)
	fmt.Println("\n— Evolution jan..feb → mar, aggregated by team —")
	fmt.Print(ev)

	fmt.Println("\n— Same, as Graphviz DOT —")
	if err := graphtempo.WriteEvolutionDOT(os.Stdout, ev); err != nil {
		panic(err)
	}
}
