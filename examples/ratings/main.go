// Ratings: multi-attribute aggregation and materialized reuse on a
// MovieLens-style co-rating network (the paper's §5.1 performance setting
// and §5.2's Fig. 13 exploration).
//
// The program aggregates users on combinations of gender, age, occupation
// and monthly average rating, demonstrates T-distributive (per-month →
// interval) and D-distributive (attribute roll-up) reuse, and explores
// stability/growth/shrinkage of female-female co-rating pairs.
//
// Run with: go run ./examples/ratings [-scale 0.05] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"time"

	graphtempo "repro"
)

func main() {
	scale := flag.Float64("scale", 0.05, "dataset scale (1.0 = the paper's Table 4 sizes)")
	seed := flag.Int64("seed", 1, "generator seed")
	flag.Parse()

	fmt.Printf("generating MovieLens co-rating graph (scale %g)…\n", *scale)
	g := graphtempo.MovieLensScaled(*seed, *scale)
	tl := g.Timeline()

	// — Multi-attribute aggregation per month (Fig. 5b's workload).
	fmt.Println("\n— August, aggregated on (gender, age) —")
	ga, err := graphtempo.SchemaByName(g, "gender", "age")
	if err != nil {
		panic(err)
	}
	aug, _ := tl.TimeOf("Aug")
	agAug := graphtempo.Aggregate(graphtempo.At(g, aug), ga, graphtempo.Distinct)
	for i, tu := range agAug.SortedNodes() {
		if i == 6 {
			fmt.Printf("  … %d more tuples\n", len(agAug.Nodes)-6)
			break
		}
		fmt.Printf("  (%s): %d users\n", ga.Label(tu), agAug.Nodes[tu])
	}

	// — Materialized reuse (§4.3): per-month aggregates answer interval
	// queries by summation (T-distributive) without re-touching the graph.
	full, err := graphtempo.SchemaByName(g, "gender", "age", "occupation", "rating")
	if err != nil {
		panic(err)
	}
	store := graphtempo.NewMatStore(g, full)
	whole := tl.All()

	start := time.Now()
	composed := store.UnionAll(whole)
	tMat := time.Since(start)
	start = time.Now()
	scratch := graphtempo.Aggregate(graphtempo.Union(g, whole, whole), full, graphtempo.All)
	tScratch := time.Since(start)
	fmt.Printf("\n— Union-ALL aggregate over [May,Oct] on all 4 attributes —\n")
	fmt.Printf("  from scratch:        %v (%d tuples)\n", tScratch, len(scratch.Nodes))
	fmt.Printf("  from per-month store: %v (%d tuples, identical: %v)\n",
		tMat, len(composed.Nodes), composed.Equal(scratch))

	// D-distributive roll-up: derive (gender) from the 4-attribute
	// aggregate of one month.
	gOnly := g.MustAttr("gender")
	rolled, err := store.PointSubset(aug, gOnly)
	if err != nil {
		panic(err)
	}
	fmt.Println("\n— August gender aggregate rolled up from the 4-attribute store —")
	for _, tu := range rolled.SortedNodes() {
		fmt.Printf("  %s: %d rating appearances\n", rolled.Schema.Label(tu), rolled.Nodes[tu])
	}

	// — Fig. 13: exploration for female-female co-rating pairs.
	gender, _ := graphtempo.SchemaByName(g, "gender")
	ff, err := graphtempo.EdgeTupleResult(gender, []string{"F"}, []string{"F"})
	if err != nil {
		panic(err)
	}
	ex := &graphtempo.Explorer{Graph: g, Schema: gender, Kind: graphtempo.Distinct, Result: ff}

	fmt.Println("\n— F-F co-rating stability (maximal pairs, ∩) —")
	_, wth := ex.InitK(graphtempo.Stability)
	k := max64(1, wth)
	for _, p := range ex.Explore(graphtempo.Stability, graphtempo.IntersectionSemantics, graphtempo.ExtendNew, k) {
		fmt.Printf("  k=%d: %v\n", k, p)
	}

	fmt.Println("\n— F-F co-rating growth (minimal pairs, ∪) —")
	_, wth = ex.InitK(graphtempo.Growth)
	k = max64(1, wth)
	for _, p := range ex.Explore(graphtempo.Growth, graphtempo.UnionSemantics, graphtempo.ExtendNew, k) {
		fmt.Printf("  k=%d: %v\n", k, p)
	}

	fmt.Println("\n— F-F co-rating shrinkage (minimal pairs, ∪) —")
	wthMin, _ := ex.InitK(graphtempo.Shrinkage)
	k = max64(1, wthMin*2)
	for _, p := range ex.Explore(graphtempo.Shrinkage, graphtempo.UnionSemantics, graphtempo.ExtendOld, k) {
		fmt.Printf("  k=%d: %v\n", k, p)
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
