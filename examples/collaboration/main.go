// Collaboration: evolution analysis of a DBLP-style co-authorship network
// (the paper's §5.2 qualitative study, Figs. 12 and 14).
//
// The program aggregates the collaboration graph on gender, studies the
// evolution of high-activity authors (#publications > 4) between decades,
// and explores when female-female collaborations were most stable, grew
// most, and shrank most.
//
// Run with: go run ./examples/collaboration [-scale 0.1] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"strconv"

	graphtempo "repro"
)

func main() {
	scale := flag.Float64("scale", 0.1, "dataset scale (1.0 = the paper's Table 3 sizes)")
	seed := flag.Int64("seed", 1, "generator seed")
	flag.Parse()

	fmt.Printf("generating DBLP collaboration graph (scale %g)…\n", *scale)
	g := graphtempo.DBLPScaled(*seed, *scale)
	tl := g.Timeline()

	// — Fig. 12: evolution of high-activity authors, aggregated on gender.
	gender, err := graphtempo.SchemaByName(g, "gender")
	if err != nil {
		panic(err)
	}
	pubs := g.MustAttr("publications")
	highActivity := func(n graphtempo.NodeID, t graphtempo.Time) bool {
		v := g.ValueString(pubs, n, t)
		if v == "" {
			return false
		}
		count, _ := strconv.Atoi(v)
		return count > 4
	}

	decades := []struct {
		title    string
		old, new graphtempo.Interval
	}{
		{"2010 vs the 2000s (Fig. 12a)", tl.Range(0, 9), tl.Point(10)},
		{"2020 vs the 2010s (Fig. 12b)", tl.Range(10, 19), tl.Point(20)},
	}
	for _, d := range decades {
		ev := graphtempo.AggregateEvolution(g, d.old, d.new, gender, graphtempo.Distinct, highActivity)
		fmt.Printf("\n— Evolution of high-activity authors, %s —\n", d.title)
		var edgeSt, edgeGr, edgeShr int64
		for _, tu := range ev.SortedNodes() {
			w := ev.Nodes[tu]
			fmt.Printf("  %s authors: stable %d, new %d, gone %d (%.0f%% stable)\n",
				ev.Schema.Label(tu), w.St, w.Gr, w.Shr, 100*stableRatio(w))
		}
		for _, k := range ev.SortedEdges() {
			w := ev.Edges[k]
			edgeSt += w.St
			edgeGr += w.Gr
			edgeShr += w.Shr
		}
		fmt.Printf("  collaborations: stable %d, new %d, gone %d\n", edgeSt, edgeGr, edgeShr)
	}

	// — Fig. 14: exploration for female-female collaborations.
	ff, err := graphtempo.EdgeTupleResult(gender, []string{"f"}, []string{"f"})
	if err != nil {
		panic(err)
	}
	ex := &graphtempo.Explorer{Graph: g, Schema: gender, Kind: graphtempo.Distinct, Result: ff}

	fmt.Println("\n— When were female-female collaborations most stable? (maximal pairs, ∩) —")
	_, wth := ex.InitK(graphtempo.Stability)
	for _, k := range thresholds(wth, 1, 0.5, 1.0) {
		pairs := ex.Explore(graphtempo.Stability, graphtempo.IntersectionSemantics, graphtempo.ExtendNew, k)
		printPairs(k, pairs)
	}

	fmt.Println("\n— When did they grow most? (minimal pairs, ∪) —")
	_, wth = ex.InitK(graphtempo.Growth)
	for _, k := range thresholds(wth, 0.1, 0.5, 1.0) {
		pairs := ex.Explore(graphtempo.Growth, graphtempo.UnionSemantics, graphtempo.ExtendNew, k)
		printPairs(k, pairs)
	}

	fmt.Println("\n— When did they shrink most? (minimal pairs, ∪) —")
	wthMin, _ := ex.InitK(graphtempo.Shrinkage)
	for _, k := range thresholds(wthMin, 1, 5, 20) {
		pairs := ex.Explore(graphtempo.Shrinkage, graphtempo.UnionSemantics, graphtempo.ExtendOld, k)
		printPairs(k, pairs)
	}
}

func stableRatio(w graphtempo.EvolutionWeights) float64 {
	if w.Total() == 0 {
		return 0
	}
	return float64(w.St) / float64(w.Total())
}

// thresholds derives increasing k values from the §3.5 initialization.
func thresholds(wth int64, factors ...float64) []int64 {
	out := make([]int64, len(factors))
	for i, f := range factors {
		k := int64(float64(wth) * f)
		if k < 1 {
			k = 1
		}
		out[i] = k
	}
	return out
}

func printPairs(k int64, pairs []graphtempo.ExplorePair) {
	fmt.Printf("  k=%d: %d pair(s)\n", k, len(pairs))
	for i, p := range pairs {
		if i == 4 {
			fmt.Println("     …")
			break
		}
		fmt.Println("     ", p)
	}
}
