// Contacts: epidemic-mitigation analysis on a school face-to-face contact
// network (the paper's second motivating scenario, §1, after Gemmetto et
// al.'s influenza study).
//
// Students carry static "grade" and "class" attributes; contacts are
// homophilous (same-class pairs dominate) and a mitigation measure halves
// contact volume from a given day. The program:
//
//  1. aggregates contacts by grade to expose the homophily structure that
//     makes targeted class closure effective;
//  2. measures shrinkage of contacts around the mitigation day to
//     quantify the measure's effect;
//  3. detects remaining stable contacts — the paper's cue that further
//     measures are required.
//
// Run with: go run ./examples/contacts
package main

import (
	"fmt"

	graphtempo "repro"
)

func main() {
	params := graphtempo.DefaultContactsParams()
	g := graphtempo.SchoolContacts(42, params)
	tl := g.Timeline()

	// 1. Homophily: aggregate day 1 contacts by grade.
	grade, err := graphtempo.SchemaByName(g, "grade")
	if err != nil {
		panic(err)
	}
	ag := graphtempo.Aggregate(graphtempo.At(g, 0), grade, graphtempo.Distinct)
	fmt.Println("— Day 1 contacts aggregated by grade —")
	var within, across int64
	for _, k := range ag.SortedEdges() {
		w := ag.Edges[k]
		if k.From == k.To {
			within += w
		} else {
			across += w
		}
		fmt.Printf("  grade %s → grade %s: %d contacts\n",
			grade.Label(k.From), grade.Label(k.To), w)
	}
	fmt.Printf("  within-grade %d vs cross-grade %d → targeted class closure is viable\n",
		within, across)

	// 2. Mitigation effect: shrinkage of contacts from the pre-mitigation
	// week into each following day.
	mday := graphtempo.Time(params.MitigationDay)
	before := tl.Range(0, mday-1)
	fmt.Printf("\n— Contacts of %s missing on later days (shrinkage) —\n", before)
	for d := mday; d < graphtempo.Time(tl.Len()); d++ {
		gone := graphtempo.Difference(g, before, tl.Point(d))
		fmt.Printf("  by %s: %d contact pairs no longer seen\n", tl.Label(d), gone.NumEdges())
	}

	// 3. Stable contacts despite mitigation: pairs seen both before and
	// after the measure — these would need additional intervention.
	after := tl.Range(mday, graphtempo.Time(tl.Len()-1))
	stable := graphtempo.Intersection(g, before, after)
	fmt.Printf("\n— Contacts persisting across the mitigation day: %d pairs —\n", stable.NumEdges())
	evolution := graphtempo.AggregateEvolution(g, before, after, grade, graphtempo.Distinct, nil)
	for _, k := range evolution.SortedEdges() {
		w := evolution.Edges[k]
		if w.St > 0 {
			fmt.Printf("  grade %s → grade %s: %d stable contact pairs (%d gone, %d new)\n",
				grade.Label(k.From), grade.Label(k.To), w.St, w.Shr, w.Gr)
		}
	}

	// Exploration: the first day pair where at least k contacts vanish —
	// does it coincide with the mitigation day?
	ex := &graphtempo.Explorer{
		Graph:  g,
		Schema: grade,
		Kind:   graphtempo.Distinct,
		Result: graphtempo.TotalEdges,
	}
	_, wth := ex.InitK(graphtempo.Shrinkage)
	pairs := ex.Explore(graphtempo.Shrinkage, graphtempo.UnionSemantics, graphtempo.ExtendOld, wth)
	fmt.Printf("\n— Day pairs with maximal contact shrinkage (k=%d) —\n", wth)
	for _, p := range pairs {
		fmt.Println("  ", p)
	}
}
