// Quickstart: the paper's running example (Figs. 1–4) end to end.
//
// Builds the 5-author collaboration graph of Fig. 1, applies each temporal
// operator, aggregates on (gender, publications), and prints the
// aggregated evolution graph of Fig. 4b.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	graphtempo "repro"
)

func main() {
	g := graphtempo.PaperExample()
	tl := g.Timeline()

	fmt.Println("— The temporal attributed graph of Fig. 1 —")
	stats := graphtempo.ComputeStats(g)
	for i, label := range stats.Labels {
		fmt.Printf("  %s: %d nodes, %d edges\n", label, stats.Nodes[i], stats.Edges[i])
	}

	// Temporal operators (§2.1).
	union := graphtempo.Union(g, tl.Point(0), tl.Point(1))
	inter := graphtempo.Intersection(g, tl.Point(0), tl.Point(1))
	removed := graphtempo.Difference(g, tl.Point(0), tl.Point(1))
	added := graphtempo.Difference(g, tl.Point(1), tl.Point(0))
	fmt.Printf("\n— Operators on (t0, t1) —\n")
	fmt.Printf("  union:        %d nodes, %d edges (Fig. 2)\n", union.NumNodes(), union.NumEdges())
	fmt.Printf("  intersection: %d nodes, %d edges\n", inter.NumNodes(), inter.NumEdges())
	fmt.Printf("  t0 − t1:      %d nodes, %d edges (deleted)\n", removed.NumNodes(), removed.NumEdges())
	fmt.Printf("  t1 − t0:      %d nodes, %d edges (new)\n", added.NumNodes(), added.NumEdges())

	// Aggregation (§2.2). DIST counts distinct entities per tuple, ALL
	// counts every per-time-point appearance.
	schema, err := graphtempo.SchemaByName(g, "gender", "publications")
	if err != nil {
		panic(err)
	}
	fmt.Println("\n— DIST aggregation of the union graph (Fig. 3d) —")
	fmt.Print(graphtempo.Aggregate(union, schema, graphtempo.Distinct))
	fmt.Println("\n— ALL aggregation of the union graph (Fig. 3e) —")
	fmt.Print(graphtempo.Aggregate(union, schema, graphtempo.All))

	// Evolution graph aggregation (§2.3): the (f,1) authors show all
	// three behaviours between t0 and t1 — one stays (u2), one appears
	// (u4 drops from 2 publications to 1), one vanishes (u3).
	fmt.Println("\n— Aggregated evolution graph t0 → t1 (Fig. 4b) —")
	ev := graphtempo.AggregateEvolution(g, tl.Point(0), tl.Point(1),
		schema, graphtempo.Distinct, nil)
	fmt.Print(ev)

	// Exploration (§3): the smallest interval pairs with ≥ 2 stable
	// edges, aggregating on gender.
	gender, _ := graphtempo.SchemaByName(g, "gender")
	ex := &graphtempo.Explorer{
		Graph:  g,
		Schema: gender,
		Kind:   graphtempo.Distinct,
		Result: graphtempo.TotalEdges,
	}
	fmt.Println("\n— Minimal interval pairs with ≥ 2 stable edges —")
	for _, p := range ex.Explore(graphtempo.Stability, graphtempo.UnionSemantics, graphtempo.ExtendNew, 2) {
		fmt.Println("  ", p)
	}
}
