// Package graphtempo is a Go implementation of GraphTempo — an aggregation
// framework for evolving graphs (Tsoukanara, Koloniari, Pitoura; EDBT
// 2023).
//
// GraphTempo models temporal attributed graphs (nodes and edges carry
// existence timestamps; nodes carry static and time-varying attributes)
// and provides:
//
//   - temporal operators — Project, Union, Intersection, Difference
//     (§2.1 of the paper) — producing lightweight views over a base graph;
//   - attribute aggregation with COUNT in distinct (DIST) and non-distinct
//     (ALL) flavours (§2.2), over any view;
//   - the evolution graph and its aggregation, discerning stability,
//     growth and shrinkage weights per attribute tuple (§2.3);
//   - exploration strategies (U-Explore / I-Explore and the degenerate
//     monotone cases of Table 1) that find minimal or maximal interval
//     pairs containing at least k events (§3);
//   - partial materialization with T-distributive (per-time-point → union
//     ALL) and D-distributive (attribute roll-up) reuse (§4.3);
//   - seeded synthetic datasets reproducing the paper's evaluation graphs
//     (Tables 3–4) and the running example of Figs. 1–4.
//
// This package is a facade re-exporting the public API of the internal
// packages; see the examples directory for complete programs.
//
// A minimal session:
//
//	g := graphtempo.PaperExample()
//	tl := g.Timeline()
//	union := graphtempo.Union(g, tl.Point(0), tl.Point(1))
//	schema, _ := graphtempo.SchemaByName(g, "gender", "publications")
//	fmt.Print(graphtempo.Aggregate(union, schema, graphtempo.Distinct))
package graphtempo

import (
	"context"
	"io"

	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/cube"
	"repro/internal/dataset"
	"repro/internal/dot"
	"repro/internal/evolution"
	"repro/internal/explore"
	"repro/internal/materialize"
	"repro/internal/ops"
	"repro/internal/plan"
	"repro/internal/storage"
	"repro/internal/stream"
	"repro/internal/tgql"
	"repro/internal/timeline"
)

// Model types (Definition 2.1).
type (
	// Graph is an immutable temporal attributed graph.
	Graph = core.Graph
	// Builder assembles a Graph.
	Builder = core.Builder
	// NodeID indexes a node within one graph.
	NodeID = core.NodeID
	// EdgeID indexes an edge within one graph.
	EdgeID = core.EdgeID
	// Endpoints identifies a directed edge by its endpoint ids.
	Endpoints = core.Endpoints
	// AttrID indexes an attribute within a graph's schema.
	AttrID = core.AttrID
	// AttrSpec describes one node attribute (name and kind).
	AttrSpec = core.AttrSpec
	// AttrKind distinguishes static from time-varying attributes.
	AttrKind = core.AttrKind
	// Stats summarizes a graph per time point (Tables 3–4).
	Stats = core.Stats
)

// Time domain types.
type (
	// Timeline is an ordered sequence of labeled base time points.
	Timeline = timeline.Timeline
	// Time identifies a base time point by its index.
	Time = timeline.Time
	// Interval is a set of time points on a timeline.
	Interval = timeline.Interval
)

// Operator and aggregation types.
type (
	// View is a node/edge selection produced by a temporal operator.
	View = ops.View
	// Sel pairs an interval with Exists/ForAll membership semantics.
	Sel = ops.Sel
	// AggSchema fixes the attribute set of an aggregation.
	AggSchema = agg.Schema
	// AggGraph is a weighted aggregate graph.
	AggGraph = agg.Graph
	// AggKind selects DIST or ALL counting.
	AggKind = agg.Kind
	// Tuple encodes one attribute-value combination.
	Tuple = agg.Tuple
	// AggEdgeKey identifies an aggregate edge by its endpoint tuples.
	AggEdgeKey = agg.EdgeKey
)

// Evolution and exploration types.
type (
	// EvolutionView is the evolution graph G> between two intervals.
	EvolutionView = evolution.View
	// EvolutionAgg is an aggregated evolution graph with St/Gr/Shr weights.
	EvolutionAgg = evolution.Agg
	// EvolutionWeights is a (stability, growth, shrinkage) triple.
	EvolutionWeights = evolution.Weights
	// EvolutionClass labels an entity as stable, grown or shrunk.
	EvolutionClass = evolution.Class
	// NodeFilter restricts which (node, time) appearances are aggregated.
	NodeFilter = evolution.Filter
	// Explorer finds minimal/maximal interval pairs with ≥ k events.
	Explorer = explore.Explorer
	// ExplorePair is one reported interval pair.
	ExplorePair = explore.Pair
	// ResultFunc measures result(G) on an aggregate graph.
	ResultFunc = explore.ResultFunc
	// Semantics selects union (minimal) or intersection (maximal) search.
	Semantics = explore.Semantics
	// Extend selects which side of a pair is extended.
	Extend = explore.Extend
)

// Materialization types (§4.3).
type (
	// MatStore holds per-time-point ALL aggregates for one schema.
	MatStore = materialize.Store
	// MatCatalog serves aggregate queries from materialized results.
	MatCatalog = materialize.Catalog
	// MatSource reports how a catalog answered a request.
	MatSource = materialize.Source
	// MatCatalogConfig sizes a catalog's serving cache.
	MatCatalogConfig = materialize.CatalogConfig
	// MatStats is an atomic snapshot of a catalog's counters.
	MatStats = materialize.Stats
	// EvalMemo is an opt-in cross-run cache of exploration candidate
	// evaluations (used automatically by TuneK).
	EvalMemo = explore.EvalMemo
	// Cube manages OLAP partial materialization over the attribute
	// lattice.
	Cube = cube.Cube
	// CubeSource reports how a cube query was answered.
	CubeSource = cube.Source
	// CoarsenSpec describes a zoom-out of the time axis.
	CoarsenSpec = core.CoarsenSpec
)

// Attribute kinds.
const (
	Static      = core.Static
	TimeVarying = core.TimeVarying
)

// Aggregation kinds (§2.2).
const (
	Distinct = agg.Distinct
	All      = agg.All
)

// Evolution event classes (§2.3).
const (
	Stability = evolution.Stability
	Growth    = evolution.Growth
	Shrinkage = evolution.Shrinkage
)

// Exploration semantics and extension sides (§3).
const (
	UnionSemantics        = explore.UnionSemantics
	IntersectionSemantics = explore.IntersectionSemantics
	ExtendOld             = explore.ExtendOld
	ExtendNew             = explore.ExtendNew
)

// NewTimeline returns a timeline with the given point labels, in order.
func NewTimeline(labels ...string) (*Timeline, error) { return timeline.New(labels...) }

// NewBuilder returns a builder for a graph over tl with the given schema.
func NewBuilder(tl *Timeline, attrs ...AttrSpec) *Builder { return core.NewBuilder(tl, attrs...) }

// ReadGraphDir loads a graph from the CSV directory format of WriteGraphDir.
func ReadGraphDir(dir string) (*Graph, error) { return core.ReadDir(dir) }

// WriteGraphDir writes a graph as labeled-array CSV files (Table 2 layout).
func WriteGraphDir(g *Graph, dir string) error { return core.WriteDir(g, dir) }

// ComputeStats returns per-time-point node and edge counts.
func ComputeStats(g *Graph) Stats { return core.ComputeStats(g) }

// Temporal operators (§2.1).

// Project returns the subgraph existing throughout t1 (Definition 2.2).
func Project(g *Graph, t1 Interval) *View { return ops.Project(g, t1) }

// At is Project on a single time point.
func At(g *Graph, t Time) *View { return ops.At(g, t) }

// Union returns the graph existing in t1 or t2 (Definition 2.3).
func Union(g *Graph, t1, t2 Interval) *View { return ops.Union(g, t1, t2) }

// Intersection returns the graph existing in both t1 and t2
// (Definition 2.4).
func Intersection(g *Graph, t1, t2 Interval) *View { return ops.Intersection(g, t1, t2) }

// Difference returns the graph existing in t1 but not t2 (Definition 2.5).
func Difference(g *Graph, t1, t2 Interval) *View { return ops.Difference(g, t1, t2) }

// Exists selects entities existing at ≥ 1 point of iv (union semantics).
func Exists(iv Interval) Sel { return ops.Exists(iv) }

// ForAllOf selects entities existing at every point of iv (intersection
// semantics).
func ForAllOf(iv Interval) Sel { return ops.ForAll(iv) }

// StabilityView generalizes Intersection to selector semantics.
func StabilityView(g *Graph, old, new Sel) *View { return ops.StabilityView(g, old, new) }

// DifferenceView generalizes Difference to selector semantics.
func DifferenceView(g *Graph, pos, neg Sel) *View { return ops.DifferenceView(g, pos, neg) }

// Materialize copies a view out into a standalone graph (Algorithm 1).
func Materialize(v *View) (*Graph, error) { return ops.Materialize(v) }

// Aggregation (§2.2, Algorithm 2).

// NewSchema returns an aggregation schema on the given attributes.
func NewSchema(g *Graph, attrs ...AttrID) (*AggSchema, error) { return agg.NewSchema(g, attrs...) }

// SchemaByName builds an aggregation schema from attribute names.
func SchemaByName(g *Graph, names ...string) (*AggSchema, error) { return agg.ByName(g, names...) }

// Aggregate computes the aggregate graph of a view.
func Aggregate(v *View, s *AggSchema, kind AggKind) *AggGraph { return agg.Aggregate(v, s, kind) }

// AggregateParallel is Aggregate with sharded multi-goroutine execution;
// workers ≤ 0 selects GOMAXPROCS.
func AggregateParallel(v *View, s *AggSchema, kind AggKind, workers int) *AggGraph {
	return agg.AggregateParallel(v, s, kind, workers)
}

// AggregateParallelCtx is AggregateParallel under a context deadline: the
// kernels poll ctx between chunks and the call returns ctx.Err() when it
// expires mid-aggregation. This is the entry point graphtempod serves
// requests through.
func AggregateParallelCtx(ctx context.Context, v *View, s *AggSchema, kind AggKind, workers int) (*AggGraph, error) {
	return agg.AggregateParallelCtx(ctx, v, s, kind, workers)
}

// AggregateFiltered is Aggregate restricted to the (node, time)
// appearances admitted by filter (nil admits everything).
func AggregateFiltered(v *View, s *AggSchema, kind AggKind, filter NodeFilter) *AggGraph {
	return agg.AggregateFiltered(v, s, kind, agg.Filter(filter))
}

// Query parses and executes one TGQL statement against g, e.g.
//
//	graphtempo.Query(g, "AGG DIST gender ON UNION(t0, t1)")
//	graphtempo.Query(g, "EXPLORE STABILITY BY gender EDGE 'f' -> 'f' K 62")
func Query(g *Graph, statement string) (*QueryResult, error) { return tgql.Exec(g, statement) }

// QueryResult is the output of a TGQL statement.
type QueryResult = tgql.Result

// QueryPlan is the compiled physical plan of one statement: execute it
// with Execute, inspect the selected operators with Explain.
type QueryPlan = plan.Plan

// Plan compiles one TGQL statement into its physical plan without
// executing it: the planner's cost model selects the concrete operators
// (aggregation kernel, exploration engine, materialization source).
func Plan(g *Graph, statement string) (*QueryPlan, error) { return tgql.PlanQuery(g, statement) }

// ExplainString renders the physical plan of one TGQL statement, e.g.
//
//	graphtempo.ExplainString(g, "AGG ALL gender ON UNION(t0, t1)")
func ExplainString(g *Graph, statement string) (string, error) {
	p, err := tgql.PlanQuery(g, statement)
	if err != nil {
		return "", err
	}
	return p.Explain(), nil
}

// Rollup derives an aggregate on an attribute subset from a finer
// aggregate (D-distributive reuse, §4.3).
func Rollup(ag *AggGraph, attrs ...AttrID) (*AggGraph, error) { return agg.Rollup(ag, attrs...) }

// Evolution (§2.3).

// NewEvolutionView builds the evolution graph between told and tnew.
func NewEvolutionView(g *Graph, told, tnew Interval) *EvolutionView {
	return evolution.NewView(g, told, tnew)
}

// AggregateEvolution computes the aggregated evolution graph with
// stability/growth/shrinkage weight triples; filter may be nil.
func AggregateEvolution(g *Graph, told, tnew Interval, s *AggSchema, kind AggKind, filter NodeFilter) *EvolutionAgg {
	return evolution.Aggregate(g, told, tnew, s, kind, filter)
}

// EvolutionTimelineStep summarizes the evolution between one consecutive
// pair of time points (per-class node and edge totals).
type EvolutionTimelineStep = evolution.TimelineStep

// EvolutionTimeline computes the step-by-step evolution profile over all
// consecutive time-point pairs.
func EvolutionTimeline(g *Graph, s *AggSchema, kind AggKind, filter NodeFilter) []EvolutionTimelineStep {
	return evolution.Timeline(g, s, kind, filter)
}

// TupleScore is one ranked attribute group from TopEdgeTuples.
type TupleScore = explore.TupleScore

// TopEdgeTuples ranks aggregate edges (attribute groups) by their peak
// event count across consecutive interval pairs.
func TopEdgeTuples(ex *Explorer, event EvolutionClass, n int) []TupleScore {
	return explore.TopEdgeTuples(ex, event, n)
}

// Exploration result functions (§3.2).

// TotalNodes counts all aggregate node weight.
func TotalNodes(g *AggGraph) int64 { return explore.TotalNodes(g) }

// TotalEdges counts all aggregate edge weight.
func TotalEdges(g *AggGraph) int64 { return explore.TotalEdges(g) }

// NodeTupleResult counts the weight of one aggregate node.
func NodeTupleResult(s *AggSchema, values ...string) (ResultFunc, error) {
	return explore.NodeTuple(s, values...)
}

// EdgeTupleResult counts the weight of one aggregate edge.
func EdgeTupleResult(s *AggSchema, from, to []string) (ResultFunc, error) {
	return explore.EdgeTuple(s, from, to)
}

// Materialization (§4.3).

// NewMatStore materializes per-time-point ALL aggregates of g under s.
func NewMatStore(g *Graph, s *AggSchema) *MatStore { return materialize.NewStore(g, s) }

// NewMatCatalog returns an empty materialization catalog over g.
func NewMatCatalog(g *Graph) *MatCatalog { return materialize.NewCatalog(g) }

// NewMatCatalogWith returns an empty materialization catalog over g with
// an explicit cache configuration.
func NewMatCatalogWith(g *Graph, cfg MatCatalogConfig) *MatCatalog {
	return materialize.NewCatalogWith(g, cfg)
}

// NewEvalMemo returns an exploration evaluation memo with the given byte
// budget (<= 0 selects the default).
func NewEvalMemo(maxBytes int64) *EvalMemo { return explore.NewEvalMemo(maxBytes) }

// NewCube returns an OLAP cube over the given dimensions (all attributes
// of g when none are given); materialize cuboids explicitly, greedily, or
// fully, then answer per-time-point aggregate queries by roll-up.
func NewCube(g *Graph, dims ...AttrID) (*Cube, error) { return cube.New(g, dims...) }

// Coarsen zooms out on the time axis per spec (union existence semantics;
// latest value per group for time-varying attributes).
func Coarsen(g *Graph, spec CoarsenSpec) (*Graph, error) { return core.Coarsen(g, spec) }

// UniformGroups builds a CoarsenSpec merging every width consecutive base
// points of tl.
func UniformGroups(tl *Timeline, width int) (CoarsenSpec, error) {
	return core.UniformGroups(tl, width)
}

// NewIndexedExplorer returns an Explorer that evaluates candidate pairs
// with precomputed per-time-point edge bitmasks — the fast path for the
// paper's §5.2 setting (one aggregate edge on an all-static schema,
// Distinct counting).
func NewIndexedExplorer(s *AggSchema, from, to []string) (*Explorer, error) {
	return explore.NewIndexedExplorer(s, from, to)
}

// Streaming ingestion and rendering.
type (
	// StreamSeries ingests an evolving graph one time point at a time and
	// maintains per-point aggregates incrementally.
	StreamSeries = stream.Series
	// StreamSnapshot is the content of one ingested time point.
	StreamSnapshot = stream.Snapshot
	// StreamNode describes one node alive at an ingested time point.
	StreamNode = stream.NodeRecord
	// StreamEdge describes one interaction at an ingested time point.
	StreamEdge = stream.EdgeRecord
	// MeasureGraph is an aggregate graph carrying a numeric measure
	// (SUM/AVG/MIN/MAX of a node attribute) instead of a count.
	MeasureGraph = agg.MeasureGraph
	// MeasureFn selects the numeric aggregate function.
	MeasureFn = agg.Measure
)

// Numeric measures (§2.2's "other aggregations may be supported").
const (
	MeasureSum = agg.Sum
	MeasureAvg = agg.Avg
	MeasureMin = agg.Min
	MeasureMax = agg.Max
)

// NewStreamSeries returns an empty ingestion series with the given schema.
func NewStreamSeries(attrs ...AttrSpec) *StreamSeries { return stream.New(attrs...) }

// AggregateMeasure computes a numeric measure of attr per aggregate node.
func AggregateMeasure(v *View, s *AggSchema, attr AttrID, m MeasureFn) (*MeasureGraph, error) {
	return agg.AggregateMeasure(v, s, attr, m)
}

// Durable persistence (binary snapshots + write-ahead log).
type (
	// StorageEngine is the durable persistence engine behind a stream-mode
	// daemon: it owns a StreamSeries plus a data directory of snapshot and
	// WAL files, keeps them in sync on every append, checkpoints in the
	// background, and recovers the whole state on OpenStorage.
	StorageEngine = storage.Engine
	// StorageOptions configures a StorageEngine (fsync policy, checkpoint
	// threshold, logger).
	StorageOptions = storage.Options
	// StorageSnapshot is the decoded content of one binary snapshot file.
	StorageSnapshot = storage.Snapshot
	// StorageStats is a point-in-time snapshot of a StorageEngine's
	// counters.
	StorageStats = storage.Stats
	// StorageRecoveryInfo describes what one StorageEngine boot recovered.
	StorageRecoveryInfo = storage.RecoveryInfo
	// FsyncPolicy selects when WAL appends reach stable storage.
	FsyncPolicy = storage.FsyncPolicy
)

// WAL fsync policies.
const (
	// FsyncAlways syncs before every ingest acknowledgement.
	FsyncAlways = storage.FsyncAlways
	// FsyncInterval syncs on a background timer.
	FsyncInterval = storage.FsyncInterval
	// FsyncNever leaves flushing to the OS page cache.
	FsyncNever = storage.FsyncNever
)

// Save writes g — and optionally materialized stores over g — to w in the
// versioned, checksummed binary snapshot format.
func Save(w io.Writer, g *Graph, stores ...*MatStore) error { return storage.Save(w, g, stores...) }

// SaveFile writes a binary snapshot atomically (temp file + rename), so
// concurrent readers only ever observe a complete file.
func SaveFile(path string, g *Graph, stores ...*MatStore) error {
	return storage.SaveFile(path, g, stores...)
}

// Load reads a binary snapshot. It never panics on malformed input; all
// failures wrap the typed storage errors (see LoadFile for the file form).
func Load(r io.Reader) (*StorageSnapshot, error) { return storage.Load(r) }

// LoadFile reads a binary snapshot file written by SaveFile or gtgen
// -format=binary.
func LoadFile(path string) (*StorageSnapshot, error) { return storage.LoadFile(path) }

// LoadGraphFile is LoadFile returning only the graph.
func LoadGraphFile(path string) (*Graph, error) { return storage.LoadGraph(path) }

// OpenStorage recovers (or initializes) a durable data directory for a
// stream with the given attribute schema: latest snapshot + WAL replay
// with torn-tail truncation. Appends through the returned engine are
// WAL-logged before they are acknowledged.
func OpenStorage(dir string, attrs []AttrSpec, opts StorageOptions) (*StorageEngine, error) {
	return storage.Open(dir, attrs, opts)
}

// ParseFsyncPolicy parses "always", "interval" or "never".
func ParseFsyncPolicy(s string) (FsyncPolicy, error) { return storage.ParseFsyncPolicy(s) }

// WindowGraph restricts g to the valid-time window [from, to] (inclusive
// timeline indices): the subgraph of nodes and interactions alive inside
// the window, with the timeline cut down to it. This is the library form of
// TGQL's VALID DURING clause; combine with StreamSeries.ReplayTo or
// StorageEngine.ReplayTo for full bi-temporal (AS OF + VALID DURING)
// reconstruction.
func WindowGraph(g *Graph, from, to int) (*Graph, error) { return core.Window(g, from, to) }

// WriteAggregateDOT renders an aggregate graph in Graphviz DOT format.
func WriteAggregateDOT(w io.Writer, ag *AggGraph) error { return dot.WriteAggregate(w, ag) }

// WriteEvolutionDOT renders an aggregated evolution graph in DOT format,
// colored by event type as in the paper's Fig. 4.
func WriteEvolutionDOT(w io.Writer, ev *EvolutionAgg) error { return dot.WriteEvolution(w, ev) }

// Datasets (§5 and the running example).

// PaperExample returns the running example of Figs. 1–4 / Table 2.
func PaperExample() *Graph { return core.PaperExample() }

// DBLP generates the synthetic DBLP collaboration graph (Table 3 sizes).
func DBLP(seed int64) *Graph { return dataset.DBLP(seed) }

// DBLPScaled generates DBLP with counts scaled by the given factor.
func DBLPScaled(seed int64, scale float64) *Graph { return dataset.DBLPScaled(seed, scale) }

// MovieLens generates the synthetic MovieLens co-rating graph (Table 4).
func MovieLens(seed int64) *Graph { return dataset.MovieLens(seed) }

// MovieLensScaled generates MovieLens with counts scaled by the factor.
func MovieLensScaled(seed int64, scale float64) *Graph { return dataset.MovieLensScaled(seed, scale) }

// SchoolContacts generates the school contact network of the §1 epidemic
// scenario.
func SchoolContacts(seed int64, p dataset.ContactsParams) *Graph {
	return dataset.SchoolContacts(seed, p)
}

// DefaultContactsParams returns a small school suitable for examples.
func DefaultContactsParams() dataset.ContactsParams { return dataset.DefaultContactsParams() }
