package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/stream"
)

func streamSchema() *stream.Series {
	return stream.New(core.AttrSpec{Name: "gender", Kind: core.Static})
}

func TestParseFlags(t *testing.T) {
	o, err := parseFlags([]string{"-shards", "a=http://h1:1;b=http://h2:2", "-max-lag", "3"})
	if err != nil {
		t.Fatal(err)
	}
	if o.shards != "a=http://h1:1;b=http://h2:2" || o.maxLag != 3 {
		t.Fatalf("parsed %+v", o)
	}
	if _, err := parseFlags(nil); err == nil {
		t.Fatal("missing -shards accepted")
	}
}

// shardServer boots one in-process graphtempod-equivalent stream server
// and ingests the given time points through its HTTP API.
func shardServer(t *testing.T, name string, points []string) *httptest.Server {
	t.Helper()
	srv, err := server.New(server.Config{
		Series:    streamSchema(),
		Logger:    slog.New(slog.NewTextHandler(io.Discard, nil)),
		ShardName: name,
		Role:      server.RolePrimary,
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	for _, label := range points {
		body := fmt.Sprintf(`{"label": %q, "nodes": [{"label": "u1", "static": {"gender": "m"}}]}`, label)
		resp, err := http.Post(hs.URL+"/v1/ingest", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("ingest %s into %s: %d %s", label, name, resp.StatusCode, data)
		}
	}
	return hs
}

// TestRunServesAndDrains boots the router binary path against two live
// shards, waits for readiness, runs a boundary-spanning union through the
// scatter path and a tgql query through the mirror, then drains.
func TestRunServesAndDrains(t *testing.T) {
	a := shardServer(t, "a", []string{"t0", "t1"})
	b := shardServer(t, "b", []string{"t2"})

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-addr", addr,
			"-shards", "a=" + a.URL + ";b=" + b.URL,
			"-probe-interval", "25ms",
			"-drain-timeout", "5s",
		})
	}()

	base := "http://" + addr
	ready := false
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); {
		resp, err := http.Get(base + "/readyz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == 200 {
				ready = true
				break
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !ready {
		t.Fatal("router never became ready")
	}

	resp, err := http.Post(base+"/v1/aggregate", "application/json", strings.NewReader(
		`{"op": "union", "interval": {"from": "t0", "to": "t1"}, "interval2": {"from": "t2"}, "attrs": ["gender"], "kind": "dist"}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("aggregate = %d: %s", resp.StatusCode, body)
	}
	if route := resp.Header.Get("X-Gt-Route"); route != "scatter" {
		t.Fatalf("boundary-spanning union routed %q, want scatter (%s)", route, body)
	}
	var ar struct {
		Graph json.RawMessage `json:"graph"`
	}
	if err := json.Unmarshal(body, &ar); err != nil || len(ar.Graph) == 0 {
		t.Fatalf("malformed aggregate response: %s", body)
	}

	resp, err = http.Post(base+"/v1/tgql", "application/json", strings.NewReader(`{"query": "STATS"}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("tgql via mirror = %d: %s", resp.StatusCode, body)
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("router did not drain after SIGTERM")
	}
}
