// Command graphtempo-router fronts a time-range sharded GraphTempo
// cluster: N graphtempod processes, each owning a contiguous range of the
// timeline (all but the last frozen, the last receiving ingest), with
// optional WAL-streaming read replicas per shard.
//
// Usage:
//
//	graphtempo-router -addr :8090 \
//	  -shards 'a=http://10.0.0.1:8089|http://10.0.0.2:8089;b=http://10.0.0.3:8089'
//
// The shard spec lists shards in time order as name=primaryURL with
// optional |replicaURL members. The router serves the same JSON API as a
// single graphtempod: decomposable aggregates (union, and projects that
// fit one shard) scatter to the shards and gather-merge exactly; every
// other query — intersection, difference, explore, tgql — is answered
// from the router's own WAL-replicated mirror of the full timeline, so
// every answer is byte-identical to a single-node deployment. Reads
// prefer the primary and fail over to caught-up replicas (-max-lag);
// writes go to the tail shard's primary only. A shard with no reachable
// member sheds load with 503 + Retry-After rather than answering wrong.
//
// SIGTERM/SIGINT starts a graceful drain, mirroring graphtempod.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cluster"
)

type options struct {
	addr          string
	shards        string
	maxLag        int
	shardTimeout  time.Duration
	timeout       time.Duration
	probeInterval time.Duration
	drainTimeout  time.Duration
	cacheBytes    int64
	logFormat     string
}

func parseFlags(args []string) (*options, error) {
	fs := flag.NewFlagSet("graphtempo-router", flag.ContinueOnError)
	o := &options{}
	fs.StringVar(&o.addr, "addr", ":8090", "listen address")
	fs.StringVar(&o.shards, "shards", "", "shard map in time order: name=primaryURL[|replicaURL...][;name=...]")
	fs.IntVar(&o.maxLag, "max-lag", 0, "max replication lag (time points) a replica may trail by and still serve reads")
	fs.DurationVar(&o.shardTimeout, "shard-timeout", 10*time.Second, "per-shard request deadline inside a scattered query")
	fs.DurationVar(&o.timeout, "timeout", 30*time.Second, "end-to-end deadline for a scattered query")
	fs.DurationVar(&o.probeInterval, "probe-interval", 250*time.Millisecond, "member health/lag probe cadence")
	fs.DurationVar(&o.drainTimeout, "drain-timeout", 20*time.Second, "graceful shutdown budget")
	fs.Int64Var(&o.cacheBytes, "cache-bytes", 0, "materialization cache budget for the mirror (0 = default)")
	fs.StringVar(&o.logFormat, "log", "text", "log format: text or json")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if o.shards == "" {
		return nil, fmt.Errorf("-shards is required")
	}
	return o, nil
}

func newLogger(format string) *slog.Logger {
	if format == "json" {
		return slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}
	return slog.New(slog.NewTextHandler(os.Stderr, nil))
}

func run(args []string) error {
	o, err := parseFlags(args)
	if err != nil {
		return err
	}
	log := newLogger(o.logFormat)
	m, err := cluster.ParseShardMap(o.shards)
	if err != nil {
		return err
	}
	log.Info("shard map", "shards", m.String())

	// New replays every frozen shard's WAL into the mirror synchronously,
	// so a ready router serves the full timeline from the first request.
	start := time.Now()
	rt, err := cluster.New(cluster.Config{
		Map:            m,
		MaxLag:         o.maxLag,
		ShardTimeout:   o.shardTimeout,
		RequestTimeout: o.timeout,
		ProbeInterval:  o.probeInterval,
		CacheBytes:     o.cacheBytes,
		Logger:         log,
	})
	if err != nil {
		return err
	}
	defer rt.Close()
	log.Info("mirror ready", "elapsed", time.Since(start).Round(time.Millisecond).String())

	hs := &http.Server{
		Addr:              o.addr,
		Handler:           rt.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Info("listening", "addr", o.addr)
		if err := hs.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			errc <- err
		}
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	log.Info("signal received, draining", "budget", o.drainTimeout.String())
	rt.BeginDrain()
	drainCtx, cancel := context.WithTimeout(context.Background(), o.drainTimeout)
	defer cancel()
	if err := hs.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("drain incomplete: %w", err)
	}
	log.Info("drained, exiting")
	return nil
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "graphtempo-router:", err)
		os.Exit(1)
	}
}
