// Command gtgen generates the synthetic evaluation datasets as CSV
// directories in the labeled-array layout of the paper's Table 2 (see
// package core for the format), so they can be inspected, edited, or
// loaded by the graphtempo CLI and by user code via ReadGraphDir.
//
// Usage:
//
//	gtgen -dataset dblp -scale 0.1 -out ./dblp01
//	gtgen -dataset movielens -out ./movielens
//	gtgen -dataset example -out ./example
//	gtgen -dataset contacts -out ./school
//
// With -format=binary the dataset is written as a single columnar snapshot
// file in the internal/storage format instead — smaller, checksummed, and
// loadable by graphtempod -dataset <file> or graphtempo.Load. An optional
// -materialize attr1,attr2 embeds the per-time-point aggregate vectors
// over those attributes alongside the graph:
//
//	gtgen -dataset dblp -scale 0.1 -format=binary -out dblp01.gts
//	gtgen -dataset dblp -format=binary -materialize gender -out dblp.gts
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/materialize"
	"repro/internal/storage"
)

func main() {
	var (
		name  = flag.String("dataset", "", "dataset: example, dblp, movielens, contacts")
		scale = flag.Float64("scale", 1.0, "size factor for dblp/movielens")
		seed  = flag.Int64("seed", 1, "generator seed")
		out   = flag.String("out", "", "output directory (or file with -format=binary)")
		form  = flag.String("format", "dir", "output format: dir (CSV labeled arrays) or binary (single snapshot file)")
		mat   = flag.String("materialize", "", "binary format: embed materialized per-point aggregates over these comma-separated attributes")
	)
	flag.Parse()
	if *name == "" || *out == "" {
		fmt.Fprintln(os.Stderr, "usage: gtgen -dataset <name> -out <dir> [-scale F] [-seed N]")
		os.Exit(2)
	}
	start := time.Now()
	var g *core.Graph
	switch *name {
	case "example":
		g = core.PaperExample()
	case "dblp":
		g = dataset.DBLPScaled(*seed, *scale)
	case "movielens":
		g = dataset.MovieLensScaled(*seed, *scale)
	case "contacts":
		g = dataset.SchoolContacts(*seed, dataset.DefaultContactsParams())
	default:
		fmt.Fprintf(os.Stderr, "unknown dataset %q\n", *name)
		os.Exit(2)
	}
	var err error
	switch *form {
	case "dir":
		if *mat != "" {
			err = fmt.Errorf("-materialize requires -format=binary")
		} else {
			err = core.WriteDir(g, *out)
		}
	case "binary":
		var stores []*materialize.Store
		if *mat != "" {
			var ids []core.AttrID
			for _, n := range strings.Split(*mat, ",") {
				id, ok := g.AttrByName(strings.TrimSpace(n))
				if !ok {
					fmt.Fprintf(os.Stderr, "gtgen: no attribute named %q in %s\n", n, *name)
					os.Exit(2)
				}
				ids = append(ids, id)
			}
			stores = append(stores, materialize.NewStore(g, agg.MustSchema(g, ids...)))
		}
		err = storage.SaveFile(*out, g, stores...)
	default:
		fmt.Fprintf(os.Stderr, "gtgen: unknown format %q (want dir or binary)\n", *form)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "gtgen:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d nodes, %d edges, %d time points) to %s in %v\n",
		*name, g.NumNodes(), g.NumEdges(), g.Timeline().Len(), *out,
		time.Since(start).Round(time.Millisecond))
}
