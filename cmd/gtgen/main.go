// Command gtgen generates the synthetic evaluation datasets as CSV
// directories in the labeled-array layout of the paper's Table 2 (see
// package core for the format), so they can be inspected, edited, or
// loaded by the graphtempo CLI and by user code via ReadGraphDir.
//
// Usage:
//
//	gtgen -dataset dblp -scale 0.1 -out ./dblp01
//	gtgen -dataset movielens -out ./movielens
//	gtgen -dataset example -out ./example
//	gtgen -dataset contacts -out ./school
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
)

func main() {
	var (
		name  = flag.String("dataset", "", "dataset: example, dblp, movielens, contacts")
		scale = flag.Float64("scale", 1.0, "size factor for dblp/movielens")
		seed  = flag.Int64("seed", 1, "generator seed")
		out   = flag.String("out", "", "output directory")
	)
	flag.Parse()
	if *name == "" || *out == "" {
		fmt.Fprintln(os.Stderr, "usage: gtgen -dataset <name> -out <dir> [-scale F] [-seed N]")
		os.Exit(2)
	}
	start := time.Now()
	var g *core.Graph
	switch *name {
	case "example":
		g = core.PaperExample()
	case "dblp":
		g = dataset.DBLPScaled(*seed, *scale)
	case "movielens":
		g = dataset.MovieLensScaled(*seed, *scale)
	case "contacts":
		g = dataset.SchoolContacts(*seed, dataset.DefaultContactsParams())
	default:
		fmt.Fprintf(os.Stderr, "unknown dataset %q\n", *name)
		os.Exit(2)
	}
	if err := core.WriteDir(g, *out); err != nil {
		fmt.Fprintln(os.Stderr, "gtgen:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d nodes, %d edges, %d time points) to %s in %v\n",
		*name, g.NumNodes(), g.NumEdges(), g.Timeline().Len(), *out,
		time.Since(start).Round(time.Millisecond))
}
