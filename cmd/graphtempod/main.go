// Command graphtempod is the GraphTempo query-serving daemon: it loads a
// dataset (or ingests snapshots live) and serves the JSON API of
// internal/server over HTTP.
//
// Usage:
//
//	graphtempod -dataset paper                       # running example
//	graphtempod -dataset dblp -scale 0.05 -seed 42   # synthetic DBLP
//	graphtempod -dataset /path/to/graphdir           # WriteGraphDir layout
//	graphtempod -stream gender:static,publications:varying   # live ingestion
//	graphtempod -stream ... -data-dir /var/lib/graphtempo    # durable ingestion
//	graphtempod -stream ... -shard a                         # cluster shard primary
//	graphtempod -stream ... -shard a -follow http://primary:8089  # read replica
//
// With -shard the process reports its shard name in /v1/status for the
// cluster router (cmd/graphtempo-router). With -follow it runs as a read
// replica: client ingestion is rejected with 409 and the timeline is
// driven by streaming the primary's WAL (/v1/wal/stream) instead; lag is
// observable as the Points gap in /v1/status.
//
// With -data-dir, ingested snapshots are appended to a write-ahead log
// (fsync policy selectable with -fsync) and compacted into binary
// snapshots in the background; on boot the daemon recovers the directory
// state — latest snapshot plus WAL replay, truncating a torn tail — and
// keeps serving exactly where the previous process stopped. See DESIGN.md
// §4 for the persistence design.
//
// Endpoints: POST /v1/aggregate, /v1/explore, /v1/tgql, /v1/ingest;
// GET /healthz, /readyz, /metrics. See DESIGN.md §3 for the serving
// architecture (admission control, deadlines, metrics taxonomy).
//
// SIGTERM/SIGINT starts a graceful drain: /readyz flips to 503 so load
// balancers stop routing here, in-flight requests finish (up to
// -drain-timeout), then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/server"
	"repro/internal/storage"
	"repro/internal/stream"
)

type options struct {
	addr         string
	dataset      string
	mmap         bool
	scale        float64
	seed         int64
	streamSpec   string
	dataDir      string
	fsync        string
	fsyncEvery   time.Duration
	cpRecords    int
	maxInflight  int64
	maxQueue     int
	timeout      time.Duration
	drainTimeout time.Duration
	cacheBytes   int64
	logFormat    string
	shard        string
	follow       string
}

func parseFlags(args []string) (*options, error) {
	fs := flag.NewFlagSet("graphtempod", flag.ContinueOnError)
	o := &options{}
	fs.StringVar(&o.addr, "addr", ":8089", "listen address")
	fs.StringVar(&o.dataset, "dataset", "", "dataset to serve: paper, dblp, movielens, or a graph directory path")
	fs.BoolVar(&o.mmap, "mmap", false, "serve a -dataset snapshot file zero-copy via mmap (decode fallback for v1 files and unsupported platforms)")
	fs.Float64Var(&o.scale, "scale", 1.0, "size factor for synthetic datasets")
	fs.Int64Var(&o.seed, "seed", 42, "generator seed for synthetic datasets")
	fs.StringVar(&o.streamSpec, "stream", "", "run in stream mode with this schema, e.g. gender:static,publications:varying")
	fs.StringVar(&o.dataDir, "data-dir", "", "stream mode: persist ingestion to this directory (WAL + snapshots) and recover it on boot")
	fs.StringVar(&o.fsync, "fsync", "always", "WAL durability: always, interval or never")
	fs.DurationVar(&o.fsyncEvery, "fsync-interval", 100*time.Millisecond, "background sync period under -fsync=interval")
	fs.IntVar(&o.cpRecords, "checkpoint-records", 0, "WAL records that trigger a background checkpoint (0 = default 1024, negative disables)")
	fs.Int64Var(&o.maxInflight, "max-inflight", 0, "admission capacity in weight units (0 = 2×GOMAXPROCS)")
	fs.IntVar(&o.maxQueue, "max-queue", -1, "admission wait-queue length (-1 = 2×capacity)")
	fs.DurationVar(&o.timeout, "timeout", 30*time.Second, "per-request deadline cap")
	fs.DurationVar(&o.drainTimeout, "drain-timeout", 20*time.Second, "graceful shutdown budget")
	fs.Int64Var(&o.cacheBytes, "cache-bytes", 0, "materialization cache budget (0 = default)")
	fs.StringVar(&o.logFormat, "log", "text", "log format: text or json")
	fs.StringVar(&o.shard, "shard", "", "cluster shard name this process serves (reported in /v1/status)")
	fs.StringVar(&o.follow, "follow", "", "run as a read replica streaming the WAL from this primary URL (requires -stream)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if (o.dataset == "") == (o.streamSpec == "") {
		return nil, errors.New("exactly one of -dataset and -stream is required")
	}
	if o.dataDir != "" && o.streamSpec == "" {
		return nil, errors.New("-data-dir requires -stream (static datasets are already durable)")
	}
	if o.mmap && o.dataset == "" {
		return nil, errors.New("-mmap requires -dataset pointing at a binary snapshot file")
	}
	if o.follow != "" && o.streamSpec == "" {
		return nil, errors.New("-follow requires -stream (a replica replays the primary's ingest stream)")
	}
	if _, err := storage.ParseFsyncPolicy(o.fsync); err != nil {
		return nil, err
	}
	return o, nil
}

// parseStreamSpec compiles "name:kind,name:kind" into an attribute schema.
func parseStreamSpec(spec string) ([]core.AttrSpec, error) {
	var attrs []core.AttrSpec
	for _, field := range strings.Split(spec, ",") {
		name, kind, ok := strings.Cut(strings.TrimSpace(field), ":")
		if !ok || name == "" {
			return nil, fmt.Errorf("bad attribute %q (want name:static or name:varying)", field)
		}
		var k core.AttrKind
		switch kind {
		case "static":
			k = core.Static
		case "varying", "time-varying":
			k = core.TimeVarying
		default:
			return nil, fmt.Errorf("bad attribute kind %q for %s (want static or varying)", kind, name)
		}
		attrs = append(attrs, core.AttrSpec{Name: name, Kind: k})
	}
	return attrs, nil
}

// loadGraph resolves the -dataset flag. A path naming a regular file is
// loaded as a binary snapshot (gtgen -format=binary) — zero-copy via mmap
// when -mmap is set — and a directory uses the CSV labeled-array layout.
// The returned mapping is non-nil when the graph aliases a file mapping;
// it must stay open for the graph's lifetime.
func loadGraph(o *options, log *slog.Logger) (*core.Graph, *storage.Mapped, error) {
	start := time.Now()
	var (
		g   *core.Graph
		m   *storage.Mapped
		err error
	)
	source := "decode"
	switch o.dataset {
	case "paper":
		g = core.PaperExample()
	case "dblp":
		g = dataset.DBLPScaled(o.seed, o.scale)
	case "movielens":
		g = dataset.MovieLensScaled(o.seed, o.scale)
	default:
		if fi, serr := os.Stat(o.dataset); serr == nil && fi.Mode().IsRegular() {
			if o.mmap {
				g, m, err = storage.MappedGraph(o.dataset)
				if m != nil {
					source = m.Source
				}
			} else {
				g, err = storage.LoadGraph(o.dataset)
			}
		} else if o.mmap {
			err = fmt.Errorf("-mmap needs a snapshot file, not %q", o.dataset)
		} else {
			g, err = core.ReadDir(o.dataset)
		}
		if err != nil {
			return nil, nil, fmt.Errorf("load %s: %w", o.dataset, err)
		}
	}
	log.Info("dataset loaded", "dataset", o.dataset, "scale", o.scale, "source", source,
		"nodes", g.NumNodes(), "edges", g.NumEdges(), "points", g.Timeline().Len(),
		"elapsed", time.Since(start).Round(time.Millisecond).String())
	return g, m, nil
}

// newServer builds the server.Config for the parsed options. The returned
// engine is non-nil when -data-dir enabled durable storage; the returned
// mapping is non-nil when -mmap serves the dataset out of a file mapping.
// The caller must Close both after the HTTP server drains. The returned
// apply/applied pair drives the WAL follower loop under -follow: apply
// lands one replicated record (through the engine in durable mode, so
// replicated points hit the replica's own WAL too) and applied reports
// the local sequence.
func newServer(o *options, log *slog.Logger) (*server.Server, *storage.Engine, *storage.Mapped, func(string, string, stream.Snapshot) error, func() int, error) {
	cfg := server.Config{
		MaxInflight:    o.maxInflight,
		MaxQueue:       o.maxQueue,
		RequestTimeout: o.timeout,
		CacheBytes:     o.cacheBytes,
		Logger:         log,
		ShardName:      o.shard,
		// A -shard daemon holds one time-range slice: whole-timeline
		// analytics must come from the router's mirror, not from here.
		Partial: o.shard != "",
	}
	if o.follow != "" {
		cfg.Role = server.RoleReplica
	}
	var (
		eng     *storage.Engine
		mapped  *storage.Mapped
		apply   func(string, string, stream.Snapshot) error
		applied func() int
	)
	if o.streamSpec != "" {
		attrs, err := parseStreamSpec(o.streamSpec)
		if err != nil {
			return nil, nil, nil, nil, nil, err
		}
		if o.dataDir != "" {
			policy, err := storage.ParseFsyncPolicy(o.fsync)
			if err != nil {
				return nil, nil, nil, nil, nil, err
			}
			eng, err = storage.Open(o.dataDir, attrs, storage.Options{
				Fsync:             policy,
				FsyncInterval:     o.fsyncEvery,
				CheckpointRecords: o.cpRecords,
				Logger:            log,
			})
			if err != nil {
				return nil, nil, nil, nil, nil, fmt.Errorf("open data dir %s: %w", o.dataDir, err)
			}
			cfg.Storage = eng
			apply, applied = engApply(eng), eng.Series().Len
			ri := eng.Recovery()
			log.Info("durable stream mode", "schema", o.streamSpec, "data-dir", o.dataDir,
				"fsync", o.fsync, "recovered_points", eng.Series().Len(),
				"recovered_wal_records", ri.WALRecords)
		} else {
			series := stream.New(attrs...)
			cfg.Series = series
			apply, applied = seriesApply(series), series.Len
			log.Info("stream mode", "schema", o.streamSpec)
		}
	} else {
		g, m, err := loadGraph(o, log)
		if err != nil {
			return nil, nil, nil, nil, nil, err
		}
		cfg.Graph = g
		mapped = m
	}
	srv, err := server.New(cfg)
	if err != nil {
		if eng != nil {
			eng.Close()
		}
		if mapped != nil {
			mapped.Close()
		}
		return nil, nil, nil, nil, nil, err
	}
	return srv, eng, mapped, apply, applied, nil
}

// engApply adapts the storage engine to the follower's Apply: replicated
// retroactive records re-run the same insert locally (hitting the replica's
// own WAL), so replica and primary converge on identical journals.
func engApply(eng *storage.Engine) func(string, string, stream.Snapshot) error {
	return func(label, before string, snap stream.Snapshot) error {
		if before != "" {
			_, err := eng.AppendAt(label, snap, before)
			return err
		}
		return eng.Append(label, snap)
	}
}

// seriesApply adapts an in-memory series to the follower's Apply.
func seriesApply(series *stream.Series) func(string, string, stream.Snapshot) error {
	return func(label, before string, snap stream.Snapshot) error {
		if before != "" {
			_, err := series.AppendAt(label, snap, before)
			return err
		}
		return series.Append(label, snap)
	}
}

func newLogger(format string) *slog.Logger {
	if format == "json" {
		return slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}
	return slog.New(slog.NewTextHandler(os.Stderr, nil))
}

func run(args []string) error {
	o, err := parseFlags(args)
	if err != nil {
		return err
	}
	log := newLogger(o.logFormat)
	srv, eng, mapped, apply, applied, err := newServer(o, log)
	if err != nil {
		return err
	}

	hs := &http.Server{
		Addr:              o.addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	if o.follow != "" {
		// Replica: continuously stream the primary's WAL into the local
		// series. Client ingestion is rejected (409) by Role=replica; the
		// follower is the only writer.
		f := &cluster.Follower{
			Pick:   func() (string, error) { return o.follow, nil },
			Apply:  apply,
			Len:    applied,
			WaitMs: 1000,
			Log:    log.With("component", "follower", "primary", o.follow),
		}
		go f.Run(ctx)
		log.Info("replica mode", "primary", o.follow)
	}

	errc := make(chan error, 1)
	go func() {
		log.Info("listening", "addr", o.addr)
		if err := hs.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			errc <- err
		}
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	// Graceful drain: stop advertising readiness, then let in-flight
	// requests finish within the drain budget.
	log.Info("signal received, draining", "budget", o.drainTimeout.String())
	srv.BeginDrain()
	drainCtx, cancel := context.WithTimeout(context.Background(), o.drainTimeout)
	defer cancel()
	if err := hs.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("drain incomplete: %w", err)
	}
	if eng != nil {
		// After the drain no ingest is in flight: sync and close the WAL so
		// the final records are durable even under -fsync=interval/never.
		if err := eng.Close(); err != nil {
			return fmt.Errorf("close storage: %w", err)
		}
		log.Info("storage closed", "generation", eng.Stats().Generation)
	}
	if mapped != nil {
		// Queries have drained, so nothing references the mapping anymore.
		if err := mapped.Close(); err != nil {
			return fmt.Errorf("unmap dataset: %w", err)
		}
	}
	log.Info("drained, exiting")
	return nil
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "graphtempod:", err)
		os.Exit(1)
	}
}
