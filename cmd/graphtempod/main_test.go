package main

import (
	"encoding/json"
	"io"
	"log/slog"
	"net"
	"net/http"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/core"
)

func TestParseFlags(t *testing.T) {
	o, err := parseFlags([]string{"-dataset", "paper", "-addr", ":0"})
	if err != nil {
		t.Fatal(err)
	}
	if o.dataset != "paper" || o.addr != ":0" {
		t.Fatalf("parsed %+v", o)
	}
	if _, err := parseFlags(nil); err == nil {
		t.Fatal("no dataset and no stream accepted")
	}
	if _, err := parseFlags([]string{"-dataset", "paper", "-stream", "a:static"}); err == nil {
		t.Fatal("dataset and stream together accepted")
	}
}

func TestParseStreamSpec(t *testing.T) {
	attrs, err := parseStreamSpec("gender:static, publications:varying")
	if err != nil {
		t.Fatal(err)
	}
	if len(attrs) != 2 || attrs[0].Name != "gender" || attrs[0].Kind != core.Static ||
		attrs[1].Name != "publications" || attrs[1].Kind != core.TimeVarying {
		t.Fatalf("parsed %+v", attrs)
	}
	for _, bad := range []string{"", "gender", "gender:maybe", ":static"} {
		if _, err := parseStreamSpec(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

func TestNewServerModes(t *testing.T) {
	log := slog.New(slog.NewTextHandler(io.Discard, nil))
	o, err := parseFlags([]string{"-dataset", "paper"})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, _, _, err := newServer(o, log); err != nil {
		t.Fatalf("static mode: %v", err)
	}
	o, err = parseFlags([]string{"-stream", "gender:static"})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, _, _, err := newServer(o, log); err != nil {
		t.Fatalf("stream mode: %v", err)
	}
	o, err = parseFlags([]string{"-stream", "gender:static", "-data-dir", t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	_, eng, _, _, _, err := newServer(o, log)
	if err != nil {
		t.Fatalf("durable stream mode: %v", err)
	}
	if eng == nil {
		t.Fatal("durable stream mode returned no storage engine")
	}
	eng.Close()
	o, err = parseFlags([]string{"-dataset", "/nonexistent/graphdir"})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, _, _, err := newServer(o, log); err == nil {
		t.Fatal("bad graph dir accepted")
	}
}

func TestParseFlagsDataDir(t *testing.T) {
	if _, err := parseFlags([]string{"-dataset", "paper", "-data-dir", "/tmp/x"}); err == nil {
		t.Fatal("-data-dir without -stream accepted")
	}
	if _, err := parseFlags([]string{"-stream", "a:static", "-fsync", "sometimes"}); err == nil {
		t.Fatal("bad -fsync policy accepted")
	}
	o, err := parseFlags([]string{"-stream", "a:static", "-data-dir", "/tmp/x", "-fsync", "interval"})
	if err != nil {
		t.Fatal(err)
	}
	if o.dataDir != "/tmp/x" {
		t.Fatalf("parsed %+v", o)
	}
}

func TestParseFlagsCluster(t *testing.T) {
	if _, err := parseFlags([]string{"-dataset", "paper", "-follow", "http://p:8089"}); err == nil {
		t.Fatal("-follow without -stream accepted")
	}
	o, err := parseFlags([]string{"-stream", "a:static", "-shard", "a", "-follow", "http://p:8089"})
	if err != nil {
		t.Fatal(err)
	}
	if o.shard != "a" || o.follow != "http://p:8089" {
		t.Fatalf("parsed %+v", o)
	}
}

// TestRunServesAndDrains boots the daemon on a random port, waits for
// readiness, runs one query, then sends SIGTERM and checks the graceful
// exit path.
func TestRunServesAndDrains(t *testing.T) {
	// Pick a free port up front so the test can poll it.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-dataset", "paper", "-addr", addr, "-drain-timeout", "5s"})
	}()

	base := "http://" + addr
	ready := false
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); {
		resp, err := http.Get(base + "/readyz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == 200 {
				ready = true
				break
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !ready {
		t.Fatal("server never became ready")
	}

	resp, err := http.Post(base+"/v1/tgql", "application/json",
		strings.NewReader(`{"query": "STATS"}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("tgql = %d: %s", resp.StatusCode, body)
	}
	var tr struct {
		Text string `json:"text"`
	}
	if err := json.Unmarshal(body, &tr); err != nil || tr.Text == "" {
		t.Fatalf("malformed tgql response: %s", body)
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not drain after SIGTERM")
	}
}
