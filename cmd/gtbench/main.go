// Command gtbench regenerates every table and figure of the GraphTempo
// paper's evaluation (§5) on the synthetic datasets.
//
// Usage:
//
//	gtbench -all                     # run everything at full Table 3/4 scale
//	gtbench -scale 0.1 -all          # scaled-down quick run
//	gtbench -run fig10,fig13         # selected experiments
//	gtbench -all -csvdir out/        # additionally write one CSV per result
//	gtbench -all -json               # one JSON object per result (JSON lines)
//	gtbench -list                    # list experiment ids
//
// Output is plain text: one aligned table per experiment, in paper order
// (one JSON object per result with -json, CSV files for plotting when
// -csvdir is set). Timings are wall
// clock on this machine; the reproduction target is the shape of each
// curve (who wins, by what factor, where crossovers fall), not the
// paper's absolute milliseconds.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"

	"repro/internal/benchutil"
	"repro/internal/core"
	"repro/internal/dataset"
)

type experiment struct {
	id    string
	about string
	make  func(env *environment) []benchutil.Printable
}

// environment lazily builds the datasets once per run.
type environment struct {
	seed  int64
	scale float64
	dblp  *core.Graph
	ml    *core.Graph
}

func (e *environment) DBLP() *core.Graph {
	if e.dblp == nil {
		start := time.Now()
		e.dblp = dataset.DBLPScaled(e.seed, e.scale)
		fmt.Fprintf(os.Stderr, "generated DBLP (scale %g) in %v\n", e.scale, time.Since(start).Round(time.Millisecond))
	}
	return e.dblp
}

func (e *environment) MovieLens() *core.Graph {
	if e.ml == nil {
		start := time.Now()
		e.ml = dataset.MovieLensScaled(e.seed, e.scale)
		fmt.Fprintf(os.Stderr, "generated MovieLens (scale %g) in %v\n", e.scale, time.Since(start).Round(time.Millisecond))
	}
	return e.ml
}

func one(p benchutil.Printable) []benchutil.Printable { return []benchutil.Printable{p} }

func experiments() []experiment {
	return []experiment{
		{"table3", "DBLP nodes/edges per year (Table 3)", func(env *environment) []benchutil.Printable {
			return one(benchutil.StatsTable("Table 3", "DBLP dataset", env.DBLP()))
		}},
		{"table4", "MovieLens nodes/edges per month (Table 4)", func(env *environment) []benchutil.Printable {
			return one(benchutil.StatsTable("Table 4", "MovieLens dataset", env.MovieLens()))
		}},
		{"fig5a", "DBLP time-point aggregation per attribute (Fig. 5a)", func(env *environment) []benchutil.Printable {
			return one(benchutil.Fig5("Fig. 5a", "DBLP: DIST aggregation time per attribute per time point",
				env.DBLP(), benchutil.Fig5DBLPCombos))
		}},
		{"fig5b", "MovieLens time-point aggregation per attribute (Fig. 5b)", func(env *environment) []benchutil.Printable {
			return one(benchutil.Fig5("Fig. 5b", "MovieLens: DIST aggregation time per attribute per time point",
				env.MovieLens(), benchutil.Fig5MovieLensCombos))
		}},
		{"fig6a", "DBLP union + aggregation, extending interval (Fig. 6a–c)", func(env *environment) []benchutil.Printable {
			return one(benchutil.Fig6("Fig. 6a-c", "DBLP: union over [2000,x] + DIST/ALL aggregation",
				env.DBLP(), "gender", "publications"))
		}},
		{"fig6d", "MovieLens union + aggregation (Fig. 6d)", func(env *environment) []benchutil.Printable {
			return one(benchutil.Fig6("Fig. 6d", "MovieLens: union over [May,x] + DIST/ALL aggregation",
				env.MovieLens(), "gender", "rating"))
		}},
		{"fig7a", "DBLP intersection + aggregation (Fig. 7a–c)", func(env *environment) []benchutil.Printable {
			return one(benchutil.Fig7("Fig. 7a-c", "DBLP: intersection over [2000,x] + DIST aggregation",
				env.DBLP(), "gender", "publications"))
		}},
		{"fig7d", "MovieLens intersection + aggregation (Fig. 7d)", func(env *environment) []benchutil.Printable {
			return one(benchutil.Fig7("Fig. 7d", "MovieLens: intersection over [May,x] + DIST aggregation",
				env.MovieLens(), "gender", "rating"))
		}},
		{"fig8a", "DBLP difference Told(∪)−Tnew (Fig. 8a–c)", func(env *environment) []benchutil.Printable {
			return one(benchutil.Fig8("Fig. 8a-c", "DBLP: Told(∪)−Tnew (Tnew=2020) + DIST/ALL aggregation",
				env.DBLP(), "gender", "publications"))
		}},
		{"fig8d", "MovieLens difference Told(∪)−Tnew (Fig. 8d)", func(env *environment) []benchutil.Printable {
			return one(benchutil.Fig8("Fig. 8d", "MovieLens: Told(∪)−Tnew (Tnew=Oct) + DIST/ALL aggregation",
				env.MovieLens(), "gender", "rating"))
		}},
		{"fig9a", "DBLP difference Tnew−Told(∪) (Fig. 9a–c)", func(env *environment) []benchutil.Printable {
			return one(benchutil.Fig9("Fig. 9a-c", "DBLP: Tnew−Told(∪) (Tnew=2020) + DIST/ALL aggregation",
				env.DBLP(), "gender", "publications"))
		}},
		{"fig9d", "MovieLens difference Tnew−Told(∪) (Fig. 9d)", func(env *environment) []benchutil.Printable {
			return one(benchutil.Fig9("Fig. 9d", "MovieLens: Tnew−Told(∪) (Tnew=Oct) + DIST/ALL aggregation",
				env.MovieLens(), "gender", "rating"))
		}},
		{"fig10", "Speedup of materialized union ALL aggregation (Fig. 10)", func(env *environment) []benchutil.Printable {
			return one(benchutil.Fig10("Fig. 10", "DBLP: T-distributive union composition vs scratch",
				env.DBLP(), "gender", "publications"))
		}},
		{"fig10s", "Composition engines: linear vs sparse-table vs prefix (Fig. 10 variant)", func(env *environment) []benchutil.Printable {
			return one(benchutil.Fig10Sparse("Fig. 10s", "DBLP: union-ALL composition engine comparison (gender)",
				env.DBLP(), "gender"))
		}},
		{"fig10c", "Concurrent clients on a shared materialization catalog (Fig. 10 variant)", func(env *environment) []benchutil.Printable {
			return one(benchutil.Fig10Concurrent("Fig. 10c", "DBLP: catalog throughput vs concurrent clients (gender)",
				env.DBLP(), "gender", []int{1, 2, 4, 8, 16}))
		}},
		{"ingest", "Stream-mode ingest-to-visible freshness under a write/read mix (delta vs full rebuild)", func(env *environment) []benchutil.Printable {
			return one(ingestFreshness("Ingest", "DBLP replay through /v1/ingest: visibility latency and refresh counters",
				env.DBLP(), "gender", 4))
		}},
		{"boot", "Cold-start: decode-on-load vs zero-copy mmap snapshot serving", func(env *environment) []benchutil.Printable {
			return one(bootColdStart("Boot", "DBLP snapshot cold start: LoadFile (decode) vs OpenMapped (zero-copy)",
				env, []float64{1, 2, 4}))
		}},
		{"cluster", "Time-range sharded scatter-gather throughput at 1/2/4/8 shards", func(env *environment) []benchutil.Printable {
			return one(clusterScaling("Cluster", "DBLP union-ALL via graphtempo-router: scaling with shard count",
				env.DBLP(), "gender", []int{1, 2, 4, 8}, 8, 64))
		}},
		{"timetravel", "AS OF reconstruction paths: full replay vs snapshot resume vs history LRU vs head", func(env *environment) []benchutil.Printable {
			return one(timeTravel("TimeTravel", "DBLP pinned point-aggregate: reconstruction path latency per as_of transaction",
				env.DBLP(), "gender"))
		}},
		{"analytics", "EVENTS/PATHS/TREND engines vs reference oracles: latency and speedup", func(env *environment) []benchutil.Printable {
			return one(analyticsBench("Analytics", "DBLP evolution analytics: engine vs oracle latency (gender)",
				env.DBLP(), "gender"))
		}},
		{"compress", "Operator kernels over dense vs run-compressed timestamp vectors", func(env *environment) []benchutil.Printable {
			return one(compressKernels("Compress", "Stretched timeline (T=1024): kernel time and bytes, dense vs run-compressed",
				env))
		}},
		{"fig11a", "DBLP attribute roll-up speedup (Fig. 11a)", func(env *environment) []benchutil.Printable {
			return one(benchutil.Fig11("Fig. 11a", "DBLP: gender and publications from (gender,publications)",
				env.DBLP(), []string{"gender", "publications"},
				[][]string{{"gender"}, {"publications"}}))
		}},
		{"fig11b", "MovieLens single-attribute roll-up speedups (Fig. 11b)", func(env *environment) []benchutil.Printable {
			var out []benchutil.Printable
			for _, e := range benchutil.Fig11MovieLensSingle(env.MovieLens()) {
				out = append(out, e)
			}
			return out
		}},
		{"fig11c", "MovieLens pair roll-up speedups (Fig. 11c)", func(env *environment) []benchutil.Printable {
			return one(benchutil.Fig11MovieLensPairs(env.MovieLens()))
		}},
		{"fig11d", "MovieLens triple roll-up speedups (Fig. 11d)", func(env *environment) []benchutil.Printable {
			return one(benchutil.Fig11MovieLensTriples(env.MovieLens()))
		}},
		{"fig12a", "DBLP evolution 2010 vs the 2000s, high activity (Fig. 12a)", func(env *environment) []benchutil.Printable {
			g := env.DBLP()
			tl := g.Timeline()
			return one(benchutil.Fig12("Fig. 12a", "DBLP gender evolution, 2000s → 2010, #publications > 4",
				g, tl.Range(0, 9), tl.Point(10), 4))
		}},
		{"fig12b", "DBLP evolution 2020 vs the 2010s, high activity (Fig. 12b)", func(env *environment) []benchutil.Printable {
			g := env.DBLP()
			tl := g.Timeline()
			return one(benchutil.Fig12("Fig. 12b", "DBLP gender evolution, 2010s → 2020, #publications > 4",
				g, tl.Range(10, 19), tl.Point(20), 4))
		}},
		{"fig13", "MovieLens exploration for F-F co-rating (Fig. 13)", func(env *environment) []benchutil.Printable {
			g := env.MovieLens()
			titles := []string{
				"MovieLens: maximal stability pairs (∩) for F-F edges",
				"MovieLens: minimal growth pairs (∪) for F-F edges",
				"MovieLens: minimal shrinkage pairs (∪) for F-F edges",
			}
			var out []benchutil.Printable
			for i, spec := range benchutil.PaperExplorations() {
				out = append(out, benchutil.FigExploration(fmt.Sprintf("Fig. 13%c", 'a'+i), titles[i],
					g, "gender", []string{"F"}, []string{"F"}, spec))
			}
			return out
		}},
		{"fig14", "DBLP exploration for f-f collaborations (Fig. 14)", func(env *environment) []benchutil.Printable {
			g := env.DBLP()
			titles := []string{
				"DBLP: maximal stability pairs (∩) for f-f collaborations",
				"DBLP: minimal growth pairs (∪) for f-f collaborations",
				"DBLP: minimal shrinkage pairs (∪) for f-f collaborations",
			}
			var out []benchutil.Printable
			for i, spec := range benchutil.PaperExplorations() {
				out = append(out, benchutil.FigExploration(fmt.Sprintf("Fig. 14%c", 'a'+i), titles[i],
					g, "gender", []string{"f"}, []string{"f"}, spec))
			}
			return out
		}},
	}
}

// gitDescribe labels the source tree for run metadata; best effort — an
// empty string when git or the repository is unavailable.
func gitDescribe() string {
	return gitDescribeIn("")
}

// gitDescribeIn runs git describe in dir ("" = current directory). It
// degrades gracefully: a missing git binary or a directory outside any
// checkout yields an empty string with no stderr noise.
func gitDescribeIn(dir string) string {
	if _, err := exec.LookPath("git"); err != nil {
		return ""
	}
	cmd := exec.Command("git", "describe", "--always", "--dirty", "--tags")
	cmd.Dir = dir
	cmd.Stderr = io.Discard
	out, err := cmd.Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// csvName turns a result id like "Fig. 13a" into "fig-13a.csv".
func csvName(id string) string {
	s := strings.ToLower(id)
	s = strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			return r
		default:
			return '-'
		}
	}, s)
	s = strings.Trim(strings.ReplaceAll(s, "--", "-"), "-")
	return s + ".csv"
}

func main() {
	var (
		all    = flag.Bool("all", false, "run every experiment")
		run    = flag.String("run", "", "comma-separated experiment ids")
		list   = flag.Bool("list", false, "list experiment ids and exit")
		scale  = flag.Float64("scale", 1.0, "dataset scale factor (1.0 = paper sizes)")
		seed   = flag.Int64("seed", 1, "dataset generator seed")
		out    = flag.String("out", "", "write text output to file instead of stdout")
		csvdir = flag.String("csvdir", "", "additionally write one CSV per result into this directory")
		asJSON = flag.Bool("json", false, "emit one JSON object per result (JSON lines) instead of text tables")
	)
	flag.Parse()

	exps := experiments()
	if *list {
		for _, e := range exps {
			fmt.Printf("%-8s %s\n", e.id, e.about)
		}
		return
	}

	var selected []experiment
	switch {
	case *all:
		selected = exps
	case *run != "":
		wanted := map[string]bool{}
		for _, id := range strings.Split(*run, ",") {
			wanted[strings.TrimSpace(id)] = true
		}
		for _, e := range exps {
			if wanted[e.id] {
				selected = append(selected, e)
				delete(wanted, e.id)
			}
		}
		if len(wanted) > 0 {
			var unknown []string
			for id := range wanted {
				unknown = append(unknown, id)
			}
			sort.Strings(unknown)
			fmt.Fprintf(os.Stderr, "unknown experiment ids: %s (try -list)\n", strings.Join(unknown, ", "))
			os.Exit(2)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if *csvdir != "" {
		if err := os.MkdirAll(*csvdir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	env := &environment{seed: *seed, scale: *scale}
	if *asJSON {
		benchutil.SetRunMeta(&benchutil.RunMeta{
			GoVersion:  runtime.Version(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			Timestamp:  time.Now().UTC().Format(time.RFC3339),
			Git:        gitDescribe(),
			Seed:       *seed,
			Scale:      *scale,
		})
	} else {
		fmt.Fprintf(w, "GraphTempo evaluation harness — seed %d, scale %g\n\n", *seed, *scale)
	}
	for _, e := range selected {
		start := time.Now()
		for _, p := range e.make(env) {
			if *asJSON {
				if err := p.WriteJSON(w); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
			} else {
				p.Print(w)
			}
			if *csvdir != "" {
				path := filepath.Join(*csvdir, csvName(p.Name()))
				f, err := os.Create(path)
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				if err := p.WriteCSV(f); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				f.Close()
			}
		}
		fmt.Fprintf(os.Stderr, "%s done in %v\n", e.id, time.Since(start).Round(time.Millisecond))
	}
}
