package main

import (
	"os"
	"os/exec"
	"strings"
	"testing"
)

// TestGitDescribeOutsideCheckout runs the describe helper from a temp
// directory that is not a git repository: it must come back empty and
// must not leak "fatal: not a git repository" onto our stderr.
func TestGitDescribeOutsideCheckout(t *testing.T) {
	dir := t.TempDir()

	// Capture this process's stderr around the call so any noise from the
	// child process (which inherits file descriptors it is handed) shows up.
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	saved := os.Stderr
	os.Stderr = w
	got := gitDescribeIn(dir)
	os.Stderr = saved
	w.Close()
	var buf [1024]byte
	n, _ := r.Read(buf[:])
	r.Close()

	if got != "" {
		t.Fatalf("gitDescribeIn(%q) = %q, want empty outside a checkout", dir, got)
	}
	if n > 0 {
		t.Fatalf("stderr noise from git describe: %q", buf[:n])
	}
}

// TestGitDescribeInsideCheckout sets up a throwaway repository with one
// commit and checks the helper reports a non-empty label for it. Skipped
// when git is unavailable in the environment.
func TestGitDescribeInsideCheckout(t *testing.T) {
	if _, err := exec.LookPath("git"); err != nil {
		t.Skip("git not installed")
	}
	dir := t.TempDir()
	run := func(args ...string) {
		t.Helper()
		cmd := exec.Command("git", args...)
		cmd.Dir = dir
		cmd.Env = append(os.Environ(),
			"GIT_AUTHOR_NAME=t", "GIT_AUTHOR_EMAIL=t@example.com",
			"GIT_COMMITTER_NAME=t", "GIT_COMMITTER_EMAIL=t@example.com")
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Skipf("git %s failed: %v: %s", args[0], err, out)
		}
	}
	run("init", "-q")
	run("commit", "-q", "--allow-empty", "-m", "seed")

	got := gitDescribeIn(dir)
	if got == "" || strings.ContainsAny(got, "\n\r") {
		t.Fatalf("gitDescribeIn inside a checkout = %q, want a single-line label", got)
	}
}
