package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/benchutil"
	"repro/internal/core"
	"repro/internal/dict"
	"repro/internal/server"
	"repro/internal/stream"
	"repro/internal/timeline"
)

// IngestFreshness benchmarks the ingest-to-visible freshness of a
// stream-mode graphtempod under a mixed write/read load: it boots an
// in-process server, replays g's history point by point through POST
// /v1/ingest while `readers` goroutines issue union-ALL aggregates against
// the growing prefix, and reports client-observed ingest-to-visible
// latency quantiles (the acknowledgement already carries the visible
// generation), read latency quantiles, and the server's delta-apply and
// full-rebuild counters.
// The scenario runs twice — once on the incremental delta path and once
// with the FullRebuild escape hatch — so the row pair is the before/after
// of incremental materialization.
func ingestFreshness(id, title string, g *core.Graph, attr string, readers int) *benchutil.Experiment {
	exp := &benchutil.Experiment{
		ID:     id,
		Title:  title,
		XLabel: "mode",
		Series: []string{"p50 ms", "p95 ms", "p99 ms", "read p50 ms", "read p99 ms", "delta applies", "full rebuilds", "reads"},
	}
	snaps := decomposeSnapshots(g)
	for _, mode := range []struct {
		name        string
		fullRebuild bool
	}{
		{"delta", false},
		{"full-rebuild", true},
	} {
		lat, readLat, deltas, rebuilds := runIngestScenario(g, snaps, attr, readers, mode.fullRebuild)
		exp.Add(mode.name,
			quantile(lat, 0.50), quantile(lat, 0.95), quantile(lat, 0.99),
			quantile(readLat, 0.50), quantile(readLat, 0.99),
			deltas, rebuilds, float64(len(readLat)))
	}
	return exp
}

// runIngestScenario replays snaps into a fresh server and returns the
// sorted per-ingest visibility and per-read latencies in milliseconds plus
// the delta/rebuild counters.
func runIngestScenario(g *core.Graph, snaps []server.IngestRequest, attr string, readers int, fullRebuild bool) (lat, readLat []float64, deltas, rebuilds float64) {
	srv, err := server.New(server.Config{
		Series:      stream.New(g.Attrs()...),
		FullRebuild: fullRebuild,
		Logger:      slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	if err != nil {
		panic(fmt.Sprintf("ingest bench: ingest server: %v", err))
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	labels := g.Timeline().Labels()
	var ingested atomic.Int64
	stop := make(chan struct{})
	var readMu sync.Mutex
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				n := ingested.Load()
				if n == 0 {
					time.Sleep(time.Millisecond)
					continue
				}
				body, _ := json.Marshal(server.AggregateRequest{
					Op:       "project",
					Interval: server.IntervalSpec{From: labels[0], To: labels[int(n)-1]},
					Attrs:    []string{attr},
					Kind:     "all",
				})
				rstart := time.Now()
				resp, err := http.Post(ts.URL+"/v1/aggregate", "application/json", bytes.NewReader(body))
				if err != nil {
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					ms := float64(time.Since(rstart).Microseconds()) / 1000
					readMu.Lock()
					readLat = append(readLat, ms)
					readMu.Unlock()
				}
			}
		}()
	}

	for i, snap := range snaps {
		body, _ := json.Marshal(snap)
		start := time.Now()
		resp, err := http.Post(ts.URL+"/v1/ingest", "application/json", bytes.NewReader(body))
		if err != nil {
			panic(fmt.Sprintf("ingest bench: ingest %s: %v", snap.Label, err))
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			panic(fmt.Sprintf("ingest bench: ingest %s: %d: %s", snap.Label, resp.StatusCode, data))
		}
		var ir server.IngestResponse
		if err := json.Unmarshal(data, &ir); err != nil || ir.Visible < i+1 {
			panic(fmt.Sprintf("ingest bench: ingest %s: visible=%d want >= %d (err=%v)", snap.Label, ir.Visible, i+1, err))
		}
		lat = append(lat, float64(time.Since(start).Microseconds())/1000)
		ingested.Store(int64(i + 1))
	}
	close(stop)
	wg.Wait()

	counters := scrapeCounters(ts.URL+"/metrics",
		"graphtempod_catalog_delta_applies_total", "graphtempod_catalog_full_rebuilds_total")
	sort.Float64s(lat)
	sort.Float64s(readLat)
	return lat, readLat, counters[0], counters[1]
}

// decomposeSnapshots rebuilds the per-point ingest batches of a finished
// graph — the inverse of the accumulation that built it.
func decomposeSnapshots(g *core.Graph) []server.IngestRequest {
	attrs := g.Attrs()
	tl := g.Timeline()
	out := make([]server.IngestRequest, tl.Len())
	for tp := range out {
		req := server.IngestRequest{Label: tl.Label(timeline.Time(tp))}
		for n := 0; n < g.NumNodes(); n++ {
			if !g.NodeTau(core.NodeID(n)).Contains(tp) {
				continue
			}
			node := server.IngestNode{Label: g.NodeLabel(core.NodeID(n))}
			for ai, spec := range attrs {
				a := core.AttrID(ai)
				if spec.Kind == core.Static {
					if c := g.StaticValue(a, core.NodeID(n)); c != dict.None {
						if node.Static == nil {
							node.Static = map[string]string{}
						}
						node.Static[spec.Name] = g.Dict(a).Value(c)
					}
				} else if c := g.VaryingValue(a, core.NodeID(n), timeline.Time(tp)); c != dict.None {
					if node.Varying == nil {
						node.Varying = map[string]string{}
					}
					node.Varying[spec.Name] = g.Dict(a).Value(c)
				}
			}
			req.Nodes = append(req.Nodes, node)
		}
		for e := 0; e < g.NumEdges(); e++ {
			if !g.EdgeTau(core.EdgeID(e)).Contains(tp) {
				continue
			}
			ep := g.Edge(core.EdgeID(e))
			req.Edges = append(req.Edges, server.IngestEdge{U: g.NodeLabel(ep.U), V: g.NodeLabel(ep.V)})
		}
		out[tp] = req
	}
	return out
}

// quantile returns the q-th quantile of sorted (nearest-rank) in the same
// unit, or 0 for an empty slice.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// scrapeCounters fetches a Prometheus exposition and returns the value of
// each named (label-free) series, 0 when absent.
func scrapeCounters(url string, names ...string) []float64 {
	out := make([]float64, len(names))
	resp, err := http.Get(url)
	if err != nil {
		return out
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return out
	}
	for _, line := range strings.Split(string(body), "\n") {
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		for i, name := range names {
			if fields[0] == name {
				if v, err := strconv.ParseFloat(fields[1], 64); err == nil {
					out[i] = v
				}
			}
		}
	}
	return out
}
