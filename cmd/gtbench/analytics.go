package main

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"repro/internal/agg"
	"repro/internal/analytics"
	"repro/internal/benchutil"
	"repro/internal/core"
	"repro/internal/materialize"
)

// analyticsBench races every analytics engine against its reference
// oracle on the same DBLP history: EVENTS entity-sweep vs per-step scan
// vs the naive re-aggregation oracle, PATHS time-bucket frontier vs the
// time-expanded sweep vs the naive per-departure BFS, and TREND
// prefix-sum catalog composition vs the sliding scan vs the naive
// per-window oracle. Each engine's answer is byte-compared against the
// family's oracle before its speedup is reported — a diverging engine
// panics rather than producing a meaningless number. The reproduction
// target is the ordering (engines beat oracles, catalog beats scan at
// ALL), not absolute milliseconds.
func analyticsBench(id, title string, g *core.Graph, attr string) *benchutil.Experiment {
	exp := &benchutil.Experiment{
		ID:     id,
		Title:  title,
		XLabel: "engine",
		Series: []string{"p50 ms", "p95 ms", "speedup×", "rows"},
	}

	const rounds = 5
	measure := func(run func() any) ([]float64, string) {
		var out any
		lat := make([]float64, 0, rounds)
		for i := 0; i < rounds; i++ {
			start := time.Now()
			out = run()
			lat = append(lat, float64(time.Since(start).Microseconds())/1000)
		}
		sort.Float64s(lat)
		data, err := json.Marshal(out)
		if err != nil {
			panic(fmt.Sprintf("analytics bench: marshal: %v", err))
		}
		return lat, string(data)
	}
	rowCount := func(payload string) float64 {
		var counted struct {
			Rows []json.RawMessage `json:"rows"`
		}
		if err := json.Unmarshal([]byte(payload), &counted); err != nil {
			panic(fmt.Sprintf("analytics bench: payload: %v", err))
		}
		return float64(len(counted.Rows))
	}
	// family benchmarks one oracle and its engines; every engine payload
	// must equal the oracle's.
	family := func(oracleName string, oracleRun func() any, engines []struct {
		name string
		run  func() any
	}) {
		oracleLat, oracleJSON := measure(oracleRun)
		rows := rowCount(oracleJSON)
		exp.Add(oracleName, quantile(oracleLat, 0.50), quantile(oracleLat, 0.95), 1, rows)
		for _, e := range engines {
			lat, got := measure(e.run)
			if got != oracleJSON {
				panic(fmt.Sprintf("analytics bench: %s diverges from %s:\n got %s\nwant %s",
					e.name, oracleName, got, oracleJSON))
			}
			exp.Add(e.name, quantile(lat, 0.50), quantile(lat, 0.95),
				quantile(oracleLat, 0.50)/quantile(lat, 0.50), rows)
		}
	}
	type engine = struct {
		name string
		run  func() any
	}

	schema := agg.MustSchema(g, g.MustAttr(attr))

	// EVENTS: classify every (step, group) transition across the history.
	evSpec := analytics.EventsSpec{Schema: schema, Kind: agg.Distinct}
	family("events naive", func() any { return analytics.NaiveEvents(g, evSpec) }, []engine{
		{"events entity-sweep", func() any { return analytics.EventsSweep(g, evSpec) }},
		{"events per-step scan", func() any { return analytics.EventsScan(g, evSpec) }},
	})

	// PATHS: earliest arrival from the first few nodes to a spread of
	// targets alive at the final point, over the whole timeline.
	paSpec := analytics.PathsSpec{
		Mode:   analytics.ModeEarliest,
		Src:    pathSources(g, 4),
		Dst:    pathTargets(g, 64),
		Window: g.Timeline().All(),
	}
	family("paths naive bfs", func() any { return analytics.NaivePaths(g, paSpec) }, []engine{
		{"paths frontier", func() any { return analytics.NewPathsEngine(g, paSpec).Run() }},
		{"paths time-expanded", func() any { return analytics.PathsTimeExpanded(g, paSpec) }},
	})

	// TREND: width-3 sliding ALL series — the T-distributive case where
	// the catalog's prefix sums apply.
	trSpec := analytics.TrendSpec{Schema: schema, Kind: agg.All, Width: 3}
	cat := materialize.NewCatalog(g)
	if _, err := cat.Materialize(schema.Attrs()...); err != nil {
		panic(fmt.Sprintf("analytics bench: materialize: %v", err))
	}
	family("trend naive", func() any { return analytics.NaiveTrend(g, trSpec) }, []engine{
		{"trend scan", func() any { return analytics.TrendScan(g, trSpec) }},
		{"trend catalog", func() any {
			out, err := analytics.TrendCatalog(cat, g, trSpec)
			if err != nil {
				panic(fmt.Sprintf("analytics bench: trend catalog: %v", err))
			}
			return out
		}},
	})

	return exp
}

// pathSources picks the first n node ids as the departure set.
func pathSources(g *core.Graph, n int) []core.NodeID {
	if g.NumNodes() < n {
		n = g.NumNodes()
	}
	src := make([]core.NodeID, 0, n)
	for i := 0; i < n; i++ {
		src = append(src, core.NodeID(i))
	}
	return src
}

// pathTargets picks up to n nodes active at the final time point, spread
// across the id space.
func pathTargets(g *core.Graph, n int) []core.NodeID {
	last := g.Timeline().Len() - 1
	stride := g.NumNodes() / n
	if stride < 1 {
		stride = 1
	}
	dst := make([]core.NodeID, 0, n)
	for v := 0; v < g.NumNodes() && len(dst) < n; v += stride {
		if g.NodeTau(core.NodeID(v)).Contains(last) {
			dst = append(dst, core.NodeID(v))
		}
	}
	return dst
}
