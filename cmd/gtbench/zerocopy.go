package main

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"repro/internal/agg"
	"repro/internal/benchutil"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/ops"
	"repro/internal/storage"
	"repro/internal/timeline"
)

// bootColdStart measures ingest-free cold start: the same snapshot file
// opened through the full decode path (LoadFile: checksum + column decode
// + per-entity rebuild) and through the zero-copy path (OpenMapped: map,
// validate section structure, alias columns in place). Three dataset
// sizes show how the decode path scales with the graph while the mapped
// path stays flat. Heap columns are live bytes retained by the opened
// snapshot (runtime heap delta after GC) — the mapped file itself stays
// in the page cache, off the Go heap.
func bootColdStart(id, title string, env *environment, mults []float64) *benchutil.Experiment {
	exp := &benchutil.Experiment{
		ID:     id,
		Title:  title,
		XLabel: "scale",
		Series: []string{"nodes", "edges", "file MB", "decode ms", "mmap ms", "speedup", "decode heap MB", "mmap heap MB"},
	}
	dir, err := os.MkdirTemp("", "gtbench-boot")
	if err != nil {
		panic(fmt.Sprintf("boot bench: %v", err))
	}
	defer os.RemoveAll(dir)
	for _, m := range mults {
		scale := env.scale * m
		g := dataset.DBLPScaled(env.seed, scale)
		path := filepath.Join(dir, fmt.Sprintf("dblp-%g.gts", scale))
		if err := storage.SaveFile(path, g); err != nil {
			panic(fmt.Sprintf("boot bench: save %s: %v", path, err))
		}
		fi, err := os.Stat(path)
		if err != nil {
			panic(fmt.Sprintf("boot bench: %v", err))
		}

		decodeMS, decodeHeap := measureBoot(func() (any, error) { return storage.LoadFile(path) }, nil)
		mmapMS, mmapHeap := measureBoot(func() (any, error) { return storage.OpenMapped(path) },
			func(v any) { v.(*storage.Mapped).Close() })

		speedup := 0.0
		if mmapMS > 0 {
			speedup = decodeMS / mmapMS
		}
		exp.Add(fmt.Sprintf("%g", scale),
			float64(g.NumNodes()), float64(g.NumEdges()),
			float64(fi.Size())/(1<<20),
			decodeMS, mmapMS, speedup,
			decodeHeap/(1<<20), mmapHeap/(1<<20))
	}
	return exp
}

// measureBoot opens a snapshot several times and returns the fastest
// wall-clock open in milliseconds plus the live heap the opened snapshot
// retains (delta of HeapAlloc across a forced GC, so transient decode
// garbage does not count).
func measureBoot(open func() (any, error), closeFn func(any)) (ms, heapBytes float64) {
	const reps = 3
	best := -1.0
	for i := 0; i < reps; i++ {
		runtime.GC()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		start := time.Now()
		v, err := open()
		if err != nil {
			panic(fmt.Sprintf("boot bench: open: %v", err))
		}
		elapsed := float64(time.Since(start).Microseconds()) / 1000
		runtime.GC()
		runtime.ReadMemStats(&m1)
		if d := float64(m1.HeapAlloc) - float64(m0.HeapAlloc); d > heapBytes {
			heapBytes = d
		}
		runtime.KeepAlive(v)
		if closeFn != nil {
			closeFn(v)
		}
		if best < 0 || elapsed < best {
			best = elapsed
		}
	}
	return best, heapBytes
}

// compressKernels compares operator kernels over dense versus
// run-compressed timestamp vectors on a stretched synthetic timeline
// (T = 1024 points — DBLP's 21 yearly points never cross the ≥4-words
// density threshold, so long timelines are where the representation
// matters). Every node lives one contiguous run, the shape bulk loads
// and archival graphs exhibit; the dense rows use the same graph pinned
// to dense reads (DisableTauCompression), so both engines see identical
// data and the result equality is asserted as a side effect.
func compressKernels(id, title string, env *environment) *benchutil.Experiment {
	const T = 1024
	nodes := int(20000 * env.scale)
	if nodes < 2000 {
		nodes = 2000
	}
	dense := stretchedGraph(env.seed, nodes, T)
	dense.DisableTauCompression()
	comp := stretchedGraph(env.seed, nodes, T)

	st := comp.TauStats()
	exp := &benchutil.Experiment{
		ID:     id,
		Title:  title,
		XLabel: "kernel",
		Series: []string{"dense ms", "compressed ms", "speedup", "dense MB", "compressed MB", "bytes ratio"},
	}
	denseMB := float64(st.DenseBytes) / (1 << 20)
	compMB := float64(st.CompressedBytes) / (1 << 20)

	tl := comp.Timeline()
	full := tl.Range(0, timeline.Time(T-1))
	h1 := tl.Range(0, timeline.Time(T/2-1))
	h2 := tl.Range(timeline.Time(T/2), timeline.Time(T-1))
	schemaDense, err := agg.ByName(dense, "team")
	if err != nil {
		panic(fmt.Sprintf("compress bench: %v", err))
	}
	schemaComp, err := agg.ByName(comp, "team")
	if err != nil {
		panic(fmt.Sprintf("compress bench: %v", err))
	}

	kernels := []struct {
		name string
		run  func(g *core.Graph, s *agg.Schema) float64
	}{
		{"project-full", func(g *core.Graph, _ *agg.Schema) float64 {
			return float64(ops.Project(g, full).NumNodes())
		}},
		{"union-halves", func(g *core.Graph, _ *agg.Schema) float64 {
			v := ops.Union(g, h1, h2)
			return float64(v.NumNodes() + v.NumEdges())
		}},
		{"intersect-halves", func(g *core.Graph, _ *agg.Schema) float64 {
			v := ops.Intersection(g, h1, h2)
			return float64(v.NumNodes() + v.NumEdges())
		}},
		{"union-agg-all", func(g *core.Graph, s *agg.Schema) float64 {
			ag := agg.Aggregate(ops.Union(g, h1, h2), s, agg.All)
			sum := 0.0
			for _, w := range ag.Nodes {
				sum += float64(w)
			}
			return sum
		}},
	}
	for _, k := range kernels {
		dMS, dChk := kernelTime(func() float64 { return k.run(dense, schemaDense) })
		cMS, cChk := kernelTime(func() float64 { return k.run(comp, schemaComp) })
		if dChk != cChk {
			panic(fmt.Sprintf("compress bench: %s: dense result %v != compressed %v", k.name, dChk, cChk))
		}
		speedup := 0.0
		if cMS > 0 {
			speedup = dMS / cMS
		}
		exp.Add(k.name, dMS, cMS, speedup, denseMB, compMB, st.Ratio())
	}
	return exp
}

// kernelTime runs fn a few times and returns the fastest wall time in
// milliseconds (noise-floor comparison) plus fn's checksum (for
// dense/compressed equality).
func kernelTime(fn func() float64) (ms, checksum float64) {
	const reps = 7
	best := -1.0
	for i := 0; i < reps; i++ {
		start := time.Now()
		checksum = fn()
		if t := float64(time.Since(start).Microseconds()) / 1000; best < 0 || t < best {
			best = t
		}
	}
	return best, checksum
}

// stretchedGraph builds a synthetic archival-shaped graph: T time points,
// each node alive for one long contiguous run, chain edges alive on the
// overlap of their endpoints' runs. Run-length compression represents
// each such vector in one 8-byte run against T/8 dense bytes.
func stretchedGraph(seed int64, nodes, T int) *core.Graph {
	labels := make([]string, T)
	for t := range labels {
		labels[t] = fmt.Sprintf("p%04d", t)
	}
	tl := timeline.MustNew(labels...)
	b := core.NewBuilder(tl, core.AttrSpec{Name: "team", Kind: core.Static})
	r := rand.New(rand.NewSource(seed))
	starts := make([]int, nodes)
	ends := make([]int, nodes)
	for n := 0; n < nodes; n++ {
		id := b.AddNode(fmt.Sprintf("n%06d", n))
		b.SetStatic(0, id, fmt.Sprintf("team%d", r.Intn(8)))
		start := r.Intn(T / 2)
		end := start + T/4 + r.Intn(T/4)
		if end > T {
			end = T
		}
		starts[n], ends[n] = start, end
		for t := start; t < end; t++ {
			b.SetNodeTime(id, timeline.Time(t))
		}
	}
	for n := 0; n+1 < nodes; n++ {
		lo, hi := starts[n], ends[n]
		if starts[n+1] > lo {
			lo = starts[n+1]
		}
		if ends[n+1] < hi {
			hi = ends[n+1]
		}
		if lo >= hi {
			continue
		}
		e := b.AddEdge(core.NodeID(n), core.NodeID(n+1))
		for t := lo; t < hi; t++ {
			b.SetEdgeTime(e, timeline.Time(t))
		}
	}
	g, err := b.Build()
	if err != nil {
		panic(fmt.Sprintf("compress bench: build: %v", err))
	}
	return g
}
