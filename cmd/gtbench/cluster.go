package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"time"

	"repro/internal/benchutil"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/plan"
	"repro/internal/server"
	"repro/internal/stream"
)

// clusterScaling benchmarks the sharded serving tier end to end: for each
// shard count it splits g's history into contiguous time-range shards,
// boots one in-process graphtempod per shard plus a graphtempo-router in
// front, and drives boundary-spanning union-ALL aggregates through the
// router's scatter-gather path with `clients` concurrent clients.
//
// Reported per shard count: router boot time (dominated by the mirror's
// synchronous WAL replay of the frozen shards), client-observed scatter
// latency quantiles and throughput, and the latency breakdown — the p50
// of a single shard's partial aggregate (the scatter leg, which shrinks
// as shards multiply because each shard owns less of the timeline) and
// the router-side gather-merge time (which grows with the fan-in).
func clusterScaling(id, title string, g *core.Graph, attr string, shardCounts []int, clients, queries int) *benchutil.Experiment {
	exp := &benchutil.Experiment{
		ID:     id,
		Title:  title,
		XLabel: "shards",
		Series: []string{"boot ms", "qps", "p50 ms", "p99 ms", "shard p50 ms", "merge ms"},
	}
	snaps := decomposeSnapshots(g)
	for _, n := range shardCounts {
		row := runClusterScenario(g, snaps, attr, n, clients, queries)
		exp.Add(fmt.Sprintf("%d", n), row...)
	}
	return exp
}

// runClusterScenario boots an n-shard cluster, measures it, and tears it
// down. The returned values follow clusterScaling's Series order.
func runClusterScenario(g *core.Graph, snaps []server.IngestRequest, attr string, n, clients, queries int) []float64 {
	if n > len(snaps) {
		panic(fmt.Sprintf("cluster bench: %d shards over %d time points", n, len(snaps)))
	}
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
	labels := g.Timeline().Labels()

	// Contiguous equal split of the timeline; cuts[i] is shard i's first
	// global point.
	cuts := make([]int, n+1)
	for i := 0; i <= n; i++ {
		cuts[i] = i * len(snaps) / n
	}

	var shardURLs []string
	spec := ""
	for i := 0; i < n; i++ {
		srv, err := server.New(server.Config{
			Series:    stream.New(g.Attrs()...),
			Logger:    quiet,
			ShardName: fmt.Sprintf("s%d", i),
			Role:      server.RolePrimary,
		})
		if err != nil {
			panic(fmt.Sprintf("cluster bench: shard server: %v", err))
		}
		hs := httptest.NewServer(srv.Handler())
		defer hs.Close()
		for _, snap := range snaps[cuts[i]:cuts[i+1]] {
			postIngest(hs.URL, snap)
		}
		shardURLs = append(shardURLs, hs.URL)
		if i > 0 {
			spec += ";"
		}
		spec += fmt.Sprintf("s%d=%s", i, hs.URL)
	}

	m, err := cluster.ParseShardMap(spec)
	if err != nil {
		panic(fmt.Sprintf("cluster bench: shard map: %v", err))
	}
	bootStart := time.Now()
	rt, err := cluster.New(cluster.Config{
		Map:           m,
		ProbeInterval: 50 * time.Millisecond,
		Logger:        quiet,
	})
	if err != nil {
		panic(fmt.Sprintf("cluster bench: router: %v", err))
	}
	defer rt.Close()
	bootMs := float64(time.Since(bootStart).Microseconds()) / 1000
	router := httptest.NewServer(rt.Handler())
	defer router.Close()

	// The tail shard replays into the mirror asynchronously; wait until the
	// router has the whole timeline before timing anything.
	readyURL := fmt.Sprintf("%s/readyz?gen=%d", router.URL, len(snaps))
	for deadline := time.Now().Add(time.Minute); ; {
		resp, err := http.Get(readyURL)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if !time.Now().Before(deadline) {
			panic("cluster bench: router mirror never caught up")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The driven query: a union-ALL over the full timeline, split at the
	// midpoint so at n >= 2 both operands cross shard boundaries.
	mid := len(labels) / 2
	query, _ := json.Marshal(server.AggregateRequest{
		Op:        "union",
		Interval:  server.IntervalSpec{From: labels[0], To: labels[mid]},
		Interval2: server.IntervalSpec{From: labels[mid], To: labels[len(labels)-1]},
		Attrs:     []string{attr},
		Kind:      "all",
	})
	postAggregate(router.URL, query) // warm the path once, outside timing

	var mu sync.Mutex
	var lat []float64
	var wg sync.WaitGroup
	work := make(chan struct{}, queries)
	for q := 0; q < queries; q++ {
		work <- struct{}{}
	}
	close(work)
	runStart := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range work {
				start := time.Now()
				postAggregate(router.URL, query)
				ms := float64(time.Since(start).Microseconds()) / 1000
				mu.Lock()
				lat = append(lat, ms)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(runStart).Seconds()
	sort.Float64s(lat)
	qps := float64(queries) / elapsed

	shardP50, mergeMs := clusterBreakdown(labels, cuts, shardURLs, attr)
	return []float64{bootMs, qps, quantile(lat, 0.50), quantile(lat, 0.99), shardP50, mergeMs}
}

// clusterBreakdown isolates the two legs of a scattered aggregate: the
// per-shard partial (each shard computes union over its whole local
// range) and the router-side merge of the gathered partials.
func clusterBreakdown(labels []string, cuts []int, shardURLs []string, attr string) (shardP50, mergeMs float64) {
	var shardLat []float64
	var parts []*plan.PartialResult
	for i, base := range shardURLs {
		lo, hi := labels[cuts[i]], labels[cuts[i+1]-1]
		body, _ := json.Marshal(server.AggregateRequest{
			Op:        "union",
			Interval:  server.IntervalSpec{From: lo, To: hi},
			Interval2: server.IntervalSpec{From: lo, To: hi},
			Attrs:     []string{attr},
			Kind:      "all",
		})
		start := time.Now()
		resp, err := http.Post(base+"/v1/partial/aggregate", "application/json", bytes.NewReader(body))
		if err != nil {
			panic(fmt.Sprintf("cluster bench: partial aggregate: %v", err))
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		shardLat = append(shardLat, float64(time.Since(start).Microseconds())/1000)
		if resp.StatusCode != http.StatusOK {
			panic(fmt.Sprintf("cluster bench: partial aggregate: %d: %s", resp.StatusCode, data))
		}
		var pr server.PartialAggregateResponse
		if err := json.Unmarshal(data, &pr); err != nil || pr.Partial == nil {
			panic(fmt.Sprintf("cluster bench: partial aggregate decode: %v", err))
		}
		parts = append(parts, pr.Partial)
	}
	start := time.Now()
	if _, err := plan.MergePartials(parts); err != nil {
		panic(fmt.Sprintf("cluster bench: merge: %v", err))
	}
	mergeMs = float64(time.Since(start).Microseconds()) / 1000
	sort.Float64s(shardLat)
	return quantile(shardLat, 0.50), mergeMs
}

func postIngest(base string, snap server.IngestRequest) {
	body, _ := json.Marshal(snap)
	resp, err := http.Post(base+"/v1/ingest", "application/json", bytes.NewReader(body))
	if err != nil {
		panic(fmt.Sprintf("cluster bench: ingest %s: %v", snap.Label, err))
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		panic(fmt.Sprintf("cluster bench: ingest %s: %d: %s", snap.Label, resp.StatusCode, data))
	}
}

func postAggregate(base string, body []byte) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/aggregate", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		panic(fmt.Sprintf("cluster bench: aggregate: %v", err))
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		panic(fmt.Sprintf("cluster bench: aggregate: %d: %s", resp.StatusCode, data))
	}
	if route := resp.Header.Get("X-Gt-Route"); route != "scatter" {
		panic(fmt.Sprintf("cluster bench: query routed %q, want scatter", route))
	}
}
