package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"time"

	"repro/internal/benchutil"
	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/storage"
)

// ttServer is one durable graphtempod with g's history replayed through
// POST /v1/ingest, checkpointed at the given transaction (0 = never).
type ttServer struct {
	eng *storage.Engine
	ts  *httptest.Server
	dir string
}

func (s *ttServer) close() {
	s.ts.Close()
	s.eng.Close()
	os.RemoveAll(s.dir)
}

func newTTServer(g *core.Graph, snaps []server.IngestRequest, checkpointAt int) *ttServer {
	dir, err := os.MkdirTemp("", "gtbench-timetravel-*")
	if err != nil {
		panic(fmt.Sprintf("timetravel bench: %v", err))
	}
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
	eng, err := storage.Open(dir, g.Attrs(), storage.Options{
		Fsync:             storage.FsyncNever,
		CheckpointRecords: -1, // manual: at most one checkpoint, mid-log
		Logger:            quiet,
	})
	if err != nil {
		panic(fmt.Sprintf("timetravel bench: open engine: %v", err))
	}
	srv, err := server.New(server.Config{Storage: eng, Logger: quiet})
	if err != nil {
		panic(fmt.Sprintf("timetravel bench: server: %v", err))
	}
	ts := httptest.NewServer(srv.Handler())
	for i, snap := range snaps {
		body, _ := json.Marshal(snap)
		resp, err := http.Post(ts.URL+"/v1/ingest", "application/json", bytes.NewReader(body))
		if err != nil {
			panic(fmt.Sprintf("timetravel bench: ingest %s: %v", snap.Label, err))
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			panic(fmt.Sprintf("timetravel bench: ingest %s: %d: %s", snap.Label, resp.StatusCode, data))
		}
		var ack server.IngestResponse
		if err := json.Unmarshal(data, &ack); err != nil || ack.Txn != i+1 {
			panic(fmt.Sprintf("timetravel bench: ingest %s ack txn = %d, want %d", snap.Label, ack.Txn, i+1))
		}
		if ack.Txn == checkpointAt {
			if err := eng.Checkpoint(); err != nil {
				panic(fmt.Sprintf("timetravel bench: checkpoint: %v", err))
			}
		}
	}
	return &ttServer{eng: eng, ts: ts, dir: dir}
}

// query posts one pinned point-aggregate and returns the wall time in ms.
func (s *ttServer) query(attr, point string, asOf int) float64 {
	body, _ := json.Marshal(server.AggregateRequest{
		Op:       "project",
		Interval: server.IntervalSpec{From: point, To: point},
		Attrs:    []string{attr},
		Kind:     "dist",
		AsOf:     asOf,
	})
	start := time.Now()
	resp, err := http.Post(s.ts.URL+"/v1/aggregate", "application/json", bytes.NewReader(body))
	if err != nil {
		panic(fmt.Sprintf("timetravel bench: aggregate as_of %d: %v", asOf, err))
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		panic(fmt.Sprintf("timetravel bench: aggregate as_of %d: %d: %s", asOf, resp.StatusCode, data))
	}
	return float64(time.Since(start).Microseconds()) / 1000
}

// timeTravel benchmarks AS OF serving against a durable graphtempod. Two
// engines ingest the same history; one checkpoints at the middle
// transaction, the other never does. Pinning the SAME upper-half
// transactions cold on both isolates the reconstruction strategy — full
// record-log replay versus snapshot + delta replay — on identical states
// (each pin's first touch is the reconstruction; revisits would hit the
// history LRU). The warm row revisits those pins on the checkpointed
// engine, and the head row is the unpinned baseline the refactor must not
// regress. The "replayed recs" column is the engine's own
// ReplayStats.Replayed for the row's median pin.
func timeTravel(id, title string, g *core.Graph, attr string) *benchutil.Experiment {
	exp := &benchutil.Experiment{
		ID:     id,
		Title:  title,
		XLabel: "path",
		Series: []string{"p50 ms", "p95 ms", "p99 ms", "queries", "replayed recs"},
	}
	snaps := decomposeSnapshots(g)
	n := len(snaps)
	watermark := n / 2
	first := g.Timeline().Labels()[0]

	var pins []int
	for txn := watermark; txn <= n; txn++ {
		pins = append(pins, txn)
	}

	replaySrv := newTTServer(g, snaps, 0)
	defer replaySrv.close()
	resumeSrv := newTTServer(g, snaps, watermark)
	defer resumeSrv.close()

	// Cold reconstructions are timed at the engine (ReplayTo is not cached
	// there, so pins can repeat for stable quantiles); the warm and head
	// rows below time the full HTTP query — reconstruction dominates the
	// cold rows by orders of magnitude, so the rows stay comparable.
	measureCold := func(name string, s *ttServer) {
		var lat []float64
		var replayed float64
		for round := 0; round < 4; round++ {
			for _, txn := range pins {
				start := time.Now()
				_, st, err := s.eng.ReplayTo(txn)
				if err != nil {
					panic(fmt.Sprintf("timetravel bench: replay to %d: %v", txn, err))
				}
				lat = append(lat, float64(time.Since(start).Microseconds())/1000)
				if txn == pins[len(pins)/2] {
					replayed = float64(st.Replayed)
				}
			}
		}
		sort.Float64s(lat)
		exp.Add(name,
			quantile(lat, 0.50), quantile(lat, 0.95), quantile(lat, 0.99),
			float64(len(lat)), replayed)
	}
	measureCold("as-of full-replay", replaySrv)
	measureCold("as-of snapshot-resume", resumeSrv)

	// Warm: prime the history LRU with one unmeasured pass, then every
	// revisit answers from the resident state.
	for _, txn := range pins {
		resumeSrv.query(attr, first, txn)
	}
	var warmLat []float64
	for round := 0; round < 4; round++ {
		for _, txn := range pins {
			warmLat = append(warmLat, resumeSrv.query(attr, first, txn))
		}
	}
	sort.Float64s(warmLat)
	exp.Add("as-of cached",
		quantile(warmLat, 0.50), quantile(warmLat, 0.95), quantile(warmLat, 0.99),
		float64(len(warmLat)), 0)

	// Head baseline: as_of 0 bypasses history serving entirely.
	var headLat []float64
	for i := 0; i < 4*len(pins); i++ {
		headLat = append(headLat, resumeSrv.query(attr, first, 0))
	}
	sort.Float64s(headLat)
	exp.Add("head",
		quantile(headLat, 0.50), quantile(headLat, 0.95), quantile(headLat, 0.99),
		float64(len(headLat)), 0)

	return exp
}
