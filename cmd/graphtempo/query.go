package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/tgql"
)

// cmdQuery executes TGQL statements: one via -q, or a read-eval-print loop
// on stdin when -q is absent — the interactive exploration mode the
// paper's conclusion envisions.
func cmdQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	gf := addGraphFlags(fs)
	q := fs.String("q", "", "a single TGQL statement to execute (omit for a REPL)")
	fs.Parse(args)

	g, err := gf.load()
	if err != nil {
		return err
	}
	if *q != "" {
		res, err := tgql.Exec(g, *q)
		if err != nil {
			return err
		}
		fmt.Print(res)
		return nil
	}

	fmt.Printf("GraphTempo query shell — %d nodes, %d edges, %d time points\n",
		g.NumNodes(), g.NumEdges(), g.Timeline().Len())
	fmt.Println(`statements: STATS | AGG | EVOLVE | EXPLORE   (empty line or "exit" quits)`)
	fmt.Println(`example: AGG DIST gender ON UNION(` + g.Timeline().Label(0) + `, ` +
		g.Timeline().Label(1) + `)`)
	scanner := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("tgql> ")
		if !scanner.Scan() {
			fmt.Println()
			return scanner.Err()
		}
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.EqualFold(line, "exit") || strings.EqualFold(line, "quit") {
			return nil
		}
		res, err := tgql.Exec(g, line)
		if err != nil {
			fmt.Println("  error:", err)
			continue
		}
		fmt.Print(res)
	}
}
