package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/agg"
	"repro/internal/benchutil"
	"repro/internal/evolution"
	"repro/internal/tgql"
)

// cmdTimeline prints the step-by-step evolution profile of the graph: per
// consecutive time-point pair, the node and edge totals of stability,
// growth and shrinkage — the whole-axis version of the Fig. 12 analysis.
func cmdTimeline(args []string) error {
	fs := flag.NewFlagSet("timeline", flag.ExitOnError)
	gf := addGraphFlags(fs)
	attrs := fs.String("attrs", "", "aggregation attributes, comma-separated")
	where := fs.String("where", "", "appearance filter, e.g. \"publications > 4\"")
	fs.Parse(args)

	g, err := gf.load()
	if err != nil {
		return err
	}
	s, err := parseSchema(g, *attrs)
	if err != nil {
		return err
	}
	var filter agg.Filter
	if *where != "" {
		filter, err = tgql.ParseFilter(g, *where)
		if err != nil {
			return err
		}
	}
	steps := evolution.Timeline(g, s, agg.Distinct, evolution.Filter(filter))
	tb := &benchutil.Table{
		ID: "timeline", Title: "evolution per consecutive time-point pair",
		Header: []string{"step", "nodes St", "nodes Gr", "nodes Shr", "edges St", "edges Gr", "edges Shr"},
	}
	tl := g.Timeline()
	for _, st := range steps {
		tb.Add(tl.Label(st.Old)+"→"+tl.Label(st.New),
			fmt.Sprintf("%d", st.NodeSt), fmt.Sprintf("%d", st.NodeGr), fmt.Sprintf("%d", st.NodeShr),
			fmt.Sprintf("%d", st.EdgeSt), fmt.Sprintf("%d", st.EdgeGr), fmt.Sprintf("%d", st.EdgeShr))
	}
	tb.Print(os.Stdout)
	return nil
}
