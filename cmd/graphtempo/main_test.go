package main

import (
	"testing"

	"repro/internal/agg"
	"repro/internal/core"
)

func TestParseInterval(t *testing.T) {
	g := core.PaperExample()
	cases := []struct {
		in      string
		want    string
		wantErr bool
	}{
		{"t0", "t0", false},
		{"t0..t2", "[t0,t2]", false},
		{"t1..t1", "t1", false},
		{"", "", true},
		{"nope", "", true},
		{"t0..nope", "", true},
		{"t2..t0", "", true},
	}
	for _, c := range cases {
		iv, err := parseInterval(g, c.in)
		if c.wantErr {
			if err == nil {
				t.Errorf("parseInterval(%q) should fail", c.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseInterval(%q): %v", c.in, err)
			continue
		}
		if got := iv.String(); got != c.want {
			t.Errorf("parseInterval(%q) = %s, want %s", c.in, got, c.want)
		}
	}
}

func TestParseKind(t *testing.T) {
	if k, err := parseKind("dist"); err != nil || k != agg.Distinct {
		t.Errorf("parseKind(dist) = %v, %v", k, err)
	}
	if k, err := parseKind("ALL"); err != nil || k != agg.All {
		t.Errorf("parseKind(ALL) = %v, %v", k, err)
	}
	if _, err := parseKind("bogus"); err == nil {
		t.Error("parseKind(bogus) should fail")
	}
}

func TestParseSchema(t *testing.T) {
	g := core.PaperExample()
	if _, err := parseSchema(g, ""); err == nil {
		t.Error("empty attrs should fail")
	}
	s, err := parseSchema(g, "gender,publications")
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Attrs()) != 2 {
		t.Errorf("schema attrs = %d, want 2", len(s.Attrs()))
	}
	if _, err := parseSchema(g, "gender,nope"); err == nil {
		t.Error("unknown attribute should fail")
	}
}

func TestApplyOp(t *testing.T) {
	g := core.PaperExample()
	iv0, _ := parseInterval(g, "t0")

	v, err := applyOp(g, "project", iv0, "")
	if err != nil || v.NumNodes() != 4 {
		t.Errorf("project: %d nodes, err %v", v.NumNodes(), err)
	}
	v, err = applyOp(g, "union", iv0, "t1")
	if err != nil || v.NumEdges() != 4 {
		t.Errorf("union: %d edges, err %v", v.NumEdges(), err)
	}
	v, err = applyOp(g, "intersection", iv0, "t1")
	if err != nil || v.NumEdges() != 2 {
		t.Errorf("intersection: %d edges, err %v", v.NumEdges(), err)
	}
	v, err = applyOp(g, "difference", iv0, "t1")
	if err != nil || v.NumEdges() != 1 {
		t.Errorf("difference: %d edges, err %v", v.NumEdges(), err)
	}
	if _, err := applyOp(g, "union", iv0, ""); err == nil {
		t.Error("binary op without -t2 should fail")
	}
	if _, err := applyOp(g, "union", iv0, "nope"); err == nil {
		t.Error("bad -t2 should fail")
	}
	if _, err := applyOp(g, "bogus", iv0, ""); err == nil {
		t.Error("unknown op should fail")
	}
}

func TestGraphFlagsLoad(t *testing.T) {
	ex := "example"
	empty := ""
	scale := 0.01
	seed := int64(1)
	gf := graphFlags{data: &empty, dataset: &ex, scale: &scale, seed: &seed}
	g, err := gf.load()
	if err != nil || g.NumNodes() != 5 {
		t.Errorf("load example: %v, %v", g, err)
	}
	bogus := "bogus"
	gf.dataset = &bogus
	if _, err := gf.load(); err == nil {
		t.Error("unknown dataset should fail")
	}
	gf.dataset = &empty
	if _, err := gf.load(); err == nil {
		t.Error("no source should fail")
	}
}
