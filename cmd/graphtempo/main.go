// Command graphtempo is a CLI for the GraphTempo temporal graph
// aggregation framework.
//
// Subcommands:
//
//	stats      per-time-point node/edge counts of a graph
//	agg        temporal operator + attribute aggregation (text or JSON)
//	evolution  aggregated evolution graph (stability/growth/shrinkage)
//	explore    minimal/maximal interval pairs with ≥ k events
//	cube       OLAP partial materialization over the attribute lattice
//	coarsen    zoom out on the time axis (e.g. years → 5-year periods)
//	query      execute TGQL statements (one-shot with -q, or a REPL)
//	timeline   step-by-step evolution profile across the whole time axis
//
// Every subcommand selects its input graph the same way:
//
//	-data DIR           load a graph from a CSV directory (see gtgen)
//	-dataset NAME       built-in synthetic dataset: example, dblp,
//	                    movielens, contacts
//	-scale F -seed N    size factor and seed for synthetic datasets
//
// Examples:
//
//	graphtempo stats -dataset dblp -scale 0.1
//	graphtempo agg -dataset example -op union -t1 t0 -t2 t1 \
//	    -attrs gender,publications -kind dist
//	graphtempo evolution -dataset example -old t0 -new t1 -attrs gender
//	graphtempo explore -dataset dblp -scale 0.1 -attrs gender \
//	    -event stability -semantics intersection -extend new -k 10 \
//	    -edge f,f
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/agg"
	"repro/internal/benchutil"
	"repro/internal/core"
	"repro/internal/cube"
	"repro/internal/dataset"
	"repro/internal/dot"
	"repro/internal/evolution"
	"repro/internal/explore"
	"repro/internal/ops"
	"repro/internal/timeline"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "stats":
		err = cmdStats(os.Args[2:])
	case "agg":
		err = cmdAgg(os.Args[2:])
	case "evolution":
		err = cmdEvolution(os.Args[2:])
	case "explore":
		err = cmdExplore(os.Args[2:])
	case "cube":
		err = cmdCube(os.Args[2:])
	case "coarsen":
		err = cmdCoarsen(os.Args[2:])
	case "query":
		err = cmdQuery(os.Args[2:])
	case "timeline":
		err = cmdTimeline(os.Args[2:])
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "graphtempo:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: graphtempo <stats|agg|evolution|explore|cube|coarsen|query|timeline> [flags]
run "graphtempo <subcommand> -h" for flags`)
}

// graphFlags adds the shared input-selection flags to a FlagSet.
type graphFlags struct {
	data    *string
	dataset *string
	scale   *float64
	seed    *int64
}

func addGraphFlags(fs *flag.FlagSet) graphFlags {
	return graphFlags{
		data:    fs.String("data", "", "CSV directory to load the graph from"),
		dataset: fs.String("dataset", "", "built-in dataset: example, dblp, movielens, contacts"),
		scale:   fs.Float64("scale", 1.0, "size factor for synthetic datasets"),
		seed:    fs.Int64("seed", 1, "seed for synthetic datasets"),
	}
}

func (gf graphFlags) load() (*core.Graph, error) {
	if *gf.data != "" {
		return core.ReadDir(*gf.data)
	}
	switch *gf.dataset {
	case "example":
		return core.PaperExample(), nil
	case "dblp":
		return dataset.DBLPScaled(*gf.seed, *gf.scale), nil
	case "movielens":
		return dataset.MovieLensScaled(*gf.seed, *gf.scale), nil
	case "contacts":
		return dataset.SchoolContacts(*gf.seed, dataset.DefaultContactsParams()), nil
	case "":
		return nil, fmt.Errorf("one of -data or -dataset is required")
	default:
		return nil, fmt.Errorf("unknown dataset %q", *gf.dataset)
	}
}

// parseInterval turns "t0" or "t0..t2" into an interval on g's timeline.
func parseInterval(g *core.Graph, s string) (timeline.Interval, error) {
	tl := g.Timeline()
	if s == "" {
		return timeline.Interval{}, fmt.Errorf("empty interval")
	}
	if from, to, ok := strings.Cut(s, ".."); ok {
		f, okF := tl.TimeOf(from)
		t, okT := tl.TimeOf(to)
		if !okF || !okT {
			return timeline.Interval{}, fmt.Errorf("unknown time point in %q", s)
		}
		if f > t {
			return timeline.Interval{}, fmt.Errorf("interval %q runs backwards", s)
		}
		return tl.Range(f, t), nil
	}
	t, ok := tl.TimeOf(s)
	if !ok {
		return timeline.Interval{}, fmt.Errorf("unknown time point %q", s)
	}
	return tl.Point(t), nil
}

func parseSchema(g *core.Graph, attrs string) (*agg.Schema, error) {
	if attrs == "" {
		return nil, fmt.Errorf("-attrs is required (comma-separated attribute names)")
	}
	return agg.ByName(g, strings.Split(attrs, ",")...)
}

func parseKind(kind string) (agg.Kind, error) {
	switch strings.ToLower(kind) {
	case "dist", "distinct":
		return agg.Distinct, nil
	case "all":
		return agg.All, nil
	default:
		return 0, fmt.Errorf("unknown aggregation kind %q (want dist or all)", kind)
	}
}

func cmdStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	gf := addGraphFlags(fs)
	fs.Parse(args)
	g, err := gf.load()
	if err != nil {
		return err
	}
	benchutil.StatsTable("stats", "nodes and edges per time point", g).Print(os.Stdout)
	return nil
}

func cmdAgg(args []string) error {
	fs := flag.NewFlagSet("agg", flag.ExitOnError)
	gf := addGraphFlags(fs)
	op := fs.String("op", "project", "temporal operator: project, union, intersection, difference")
	t1 := fs.String("t1", "", "first interval, e.g. 2000 or 2000..2005")
	t2 := fs.String("t2", "", "second interval (unused for project)")
	attrs := fs.String("attrs", "", "aggregation attributes, comma-separated")
	kindFlag := fs.String("kind", "dist", "aggregation kind: dist or all")
	format := fs.String("format", "text", "output format: text, json or dot")
	measureAttr := fs.String("measure", "", "numeric attribute to measure instead of counting")
	measureFn := fs.String("fn", "avg", "measure function: sum, avg, min, max")
	fs.Parse(args)

	g, err := gf.load()
	if err != nil {
		return err
	}
	s, err := parseSchema(g, *attrs)
	if err != nil {
		return err
	}
	kind, err := parseKind(*kindFlag)
	if err != nil {
		return err
	}
	iv1, err := parseInterval(g, *t1)
	if err != nil {
		return fmt.Errorf("-t1: %w", err)
	}
	view, err := applyOp(g, *op, iv1, *t2)
	if err != nil {
		return err
	}
	if *measureAttr != "" {
		a, ok := g.AttrByName(*measureAttr)
		if !ok {
			return fmt.Errorf("unknown attribute %q", *measureAttr)
		}
		var m agg.Measure
		switch strings.ToLower(*measureFn) {
		case "sum":
			m = agg.Sum
		case "avg":
			m = agg.Avg
		case "min":
			m = agg.Min
		case "max":
			m = agg.Max
		default:
			return fmt.Errorf("unknown measure function %q", *measureFn)
		}
		mg, err := agg.AggregateMeasure(view, s, a, m)
		if err != nil {
			return err
		}
		fmt.Print(mg)
		return nil
	}
	result := agg.Aggregate(view, s, kind)
	switch *format {
	case "json":
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(result)
	case "dot":
		return dot.WriteAggregate(os.Stdout, result)
	}
	fmt.Printf("%s on %s: %d nodes, %d edges\n", *op, view.Times(), view.NumNodes(), view.NumEdges())
	fmt.Print(result)
	return nil
}

func cmdCube(args []string) error {
	fs := flag.NewFlagSet("cube", flag.ExitOnError)
	gf := addGraphFlags(fs)
	budget := fs.Int("budget", 2, "number of cuboids to materialize greedily")
	attrs := fs.String("attrs", "", "query attributes, comma-separated")
	at := fs.String("at", "", "time point to query")
	fs.Parse(args)

	g, err := gf.load()
	if err != nil {
		return err
	}
	c, err := cube.New(g)
	if err != nil {
		return err
	}
	if err := c.MaterializeGreedy(*budget); err != nil {
		return err
	}
	fmt.Print(c.Describe())
	if *attrs == "" || *at == "" {
		return nil
	}
	iv, err := parseInterval(g, *at)
	if err != nil {
		return fmt.Errorf("-at: %w", err)
	}
	var ids []core.AttrID
	for _, name := range strings.Split(*attrs, ",") {
		a, ok := g.AttrByName(name)
		if !ok {
			return fmt.Errorf("unknown attribute %q", name)
		}
		ids = append(ids, a)
	}
	ag, src, err := c.Query(iv.Min(), ids...)
	if err != nil {
		return err
	}
	fmt.Printf("query (%s) at %s answered from %s:\n", *attrs, *at, src)
	fmt.Print(ag)
	return nil
}

func cmdCoarsen(args []string) error {
	fs := flag.NewFlagSet("coarsen", flag.ExitOnError)
	gf := addGraphFlags(fs)
	width := fs.Int("width", 2, "base time points per coarse point")
	out := fs.String("out", "", "write the coarse graph to this CSV directory")
	fs.Parse(args)

	g, err := gf.load()
	if err != nil {
		return err
	}
	spec, err := core.UniformGroups(g.Timeline(), *width)
	if err != nil {
		return err
	}
	c, err := core.Coarsen(g, spec)
	if err != nil {
		return err
	}
	benchutil.StatsTable("coarsened", fmt.Sprintf("zoomed out ×%d", *width), c).Print(os.Stdout)
	if *out != "" {
		if err := core.WriteDir(c, *out); err != nil {
			return err
		}
		fmt.Printf("wrote coarse graph to %s\n", *out)
	}
	return nil
}

func applyOp(g *core.Graph, op string, iv1 timeline.Interval, t2 string) (*ops.View, error) {
	switch op {
	case "project":
		return ops.Project(g, iv1), nil
	case "union", "intersection", "difference":
		if t2 == "" {
			return nil, fmt.Errorf("-t2 is required for %s", op)
		}
		iv2, err := parseInterval(g, t2)
		if err != nil {
			return nil, fmt.Errorf("-t2: %w", err)
		}
		switch op {
		case "union":
			return ops.Union(g, iv1, iv2), nil
		case "intersection":
			return ops.Intersection(g, iv1, iv2), nil
		default:
			return ops.Difference(g, iv1, iv2), nil
		}
	default:
		return nil, fmt.Errorf("unknown operator %q", op)
	}
}

func cmdEvolution(args []string) error {
	fs := flag.NewFlagSet("evolution", flag.ExitOnError)
	gf := addGraphFlags(fs)
	old := fs.String("old", "", "old interval, e.g. 2000..2009")
	new := fs.String("new", "", "new interval, e.g. 2010")
	attrs := fs.String("attrs", "", "aggregation attributes, comma-separated")
	kindFlag := fs.String("kind", "dist", "aggregation kind: dist or all")
	format := fs.String("format", "text", "output format: text, json or dot")
	fs.Parse(args)

	g, err := gf.load()
	if err != nil {
		return err
	}
	s, err := parseSchema(g, *attrs)
	if err != nil {
		return err
	}
	kind, err := parseKind(*kindFlag)
	if err != nil {
		return err
	}
	ivOld, err := parseInterval(g, *old)
	if err != nil {
		return fmt.Errorf("-old: %w", err)
	}
	ivNew, err := parseInterval(g, *new)
	if err != nil {
		return fmt.Errorf("-new: %w", err)
	}
	result := evolution.Aggregate(g, ivOld, ivNew, s, kind, nil)
	switch *format {
	case "json":
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(result)
	case "dot":
		return dot.WriteEvolution(os.Stdout, result)
	}
	fmt.Print(result)
	return nil
}

func cmdExplore(args []string) error {
	fs := flag.NewFlagSet("explore", flag.ExitOnError)
	gf := addGraphFlags(fs)
	attrs := fs.String("attrs", "", "aggregation attributes, comma-separated")
	event := fs.String("event", "stability", "event type: stability, growth, shrinkage")
	semantics := fs.String("semantics", "union", "union (minimal pairs) or intersection (maximal pairs)")
	extend := fs.String("extend", "new", "which side to extend: old or new")
	k := fs.Int64("k", 0, "event threshold (0 = auto from the §3.5 initialization)")
	edge := fs.String("edge", "", "count one aggregate edge, e.g. f,f (from,to on single-attribute schemas)")
	node := fs.String("node", "", "count one aggregate node tuple, e.g. f")
	indexed := fs.Bool("indexed", false, "use the per-time-point edge bitmask index (requires -edge and a static schema)")
	tune := fs.Int("tune", 0, "instead of a fixed k, find the largest k yielding at least this many pairs")
	fs.Parse(args)

	g, err := gf.load()
	if err != nil {
		return err
	}
	s, err := parseSchema(g, *attrs)
	if err != nil {
		return err
	}
	ex := &explore.Explorer{Graph: g, Schema: s, Kind: agg.Distinct, Result: explore.TotalEdges}
	switch {
	case *edge != "":
		parts := strings.Split(*edge, ",")
		if len(parts) != 2*len(s.Attrs()) {
			return fmt.Errorf("-edge wants %d values (from,to tuples)", 2*len(s.Attrs()))
		}
		half := len(parts) / 2
		if *indexed {
			ix, err := explore.NewIndexedExplorer(s, parts[:half], parts[half:])
			if err != nil {
				return err
			}
			ex = ix
			break
		}
		fn, err := explore.EdgeTuple(s, parts[:half], parts[half:])
		if err != nil {
			return err
		}
		ex.Result = fn
	case *node != "":
		fn, err := explore.NodeTuple(s, strings.Split(*node, ",")...)
		if err != nil {
			return err
		}
		ex.Result = fn
	}

	var ev explore.Event
	switch *event {
	case "stability":
		ev = evolution.Stability
	case "growth":
		ev = evolution.Growth
	case "shrinkage":
		ev = evolution.Shrinkage
	default:
		return fmt.Errorf("unknown event %q", *event)
	}
	var sem explore.Semantics
	switch *semantics {
	case "union":
		sem = explore.UnionSemantics
	case "intersection":
		sem = explore.IntersectionSemantics
	default:
		return fmt.Errorf("unknown semantics %q", *semantics)
	}
	var ext explore.Extend
	switch *extend {
	case "old":
		ext = explore.ExtendOld
	case "new":
		ext = explore.ExtendNew
	default:
		return fmt.Errorf("unknown extension side %q", *extend)
	}

	var kk int64
	var pairs []explore.Pair
	if *tune > 0 {
		kk, pairs = ex.TuneK(ev, sem, ext, *tune)
		if kk == 0 {
			fmt.Printf("no threshold yields %d pairs\n", *tune)
			return nil
		}
		fmt.Printf("tuned threshold k=%d (largest with ≥ %d pairs)\n", kk, *tune)
		printExplorePairs(*event, *semantics, *extend, kk, pairs, ex.Evaluations)
		return nil
	}
	kk = *k
	if kk <= 0 {
		min, max := ex.InitK(ev)
		if sem == explore.UnionSemantics {
			kk = max
		} else {
			kk = min
		}
		if kk < 1 {
			kk = 1
		}
		fmt.Printf("auto threshold k=%d (w_th from §3.5: min=%d max=%d)\n", kk, min, max)
	}
	pairs = ex.Explore(ev, sem, ext, kk)
	printExplorePairs(*event, *semantics, *extend, kk, pairs, ex.Evaluations)
	return nil
}

func printExplorePairs(event, semantics, extend string, k int64, pairs []explore.Pair, evals int) {
	fmt.Printf("%s, %s semantics, extending %s, k=%d: %d pair(s), %d evaluations\n",
		event, semantics, extend, k, len(pairs), evals)
	for _, p := range pairs {
		fmt.Println("  ", p)
	}
}
