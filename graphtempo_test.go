package graphtempo_test

import (
	"strings"
	"testing"

	graphtempo "repro"
)

// TestFacadeEndToEnd drives the whole public API surface on the paper's
// running example, asserting the headline numbers of Figs. 2–4.
func TestFacadeEndToEnd(t *testing.T) {
	g := graphtempo.PaperExample()
	tl := g.Timeline()

	if g.NumNodes() != 5 || g.NumEdges() != 6 {
		t.Fatalf("fixture sizes = %d/%d", g.NumNodes(), g.NumEdges())
	}

	union := graphtempo.Union(g, tl.Point(0), tl.Point(1))
	if union.NumNodes() != 4 || union.NumEdges() != 4 {
		t.Fatalf("union = %d/%d, want 4/4 (Fig. 2)", union.NumNodes(), union.NumEdges())
	}

	schema, err := graphtempo.SchemaByName(g, "gender", "publications")
	if err != nil {
		t.Fatal(err)
	}
	dist := graphtempo.Aggregate(union, schema, graphtempo.Distinct)
	f1, ok := schema.Encode("f", "1")
	if !ok {
		t.Fatal("Encode failed")
	}
	if dist.NodeWeight(f1) != 3 {
		t.Fatalf("DIST w(f,1) = %d, want 3 (Fig. 3d)", dist.NodeWeight(f1))
	}
	all := graphtempo.Aggregate(union, schema, graphtempo.All)
	if all.NodeWeight(f1) != 4 {
		t.Fatalf("ALL w(f,1) = %d, want 4 (Fig. 3e)", all.NodeWeight(f1))
	}

	ev := graphtempo.AggregateEvolution(g, tl.Point(0), tl.Point(1),
		schema, graphtempo.Distinct, nil)
	w := ev.NodeWeights(f1)
	if w.St != 1 || w.Gr != 1 || w.Shr != 1 {
		t.Fatalf("evolution weights(f,1) = %+v, want 1/1/1 (Fig. 4b)", w)
	}

	gender, err := graphtempo.SchemaByName(g, "gender")
	if err != nil {
		t.Fatal(err)
	}
	ex := &graphtempo.Explorer{
		Graph:  g,
		Schema: gender,
		Kind:   graphtempo.Distinct,
		Result: graphtempo.TotalEdges,
	}
	pairs := ex.Explore(graphtempo.Stability, graphtempo.UnionSemantics, graphtempo.ExtendNew, 2)
	if len(pairs) != 1 || pairs[0].Result != 2 {
		t.Fatalf("exploration pairs = %v", pairs)
	}

	// Materialization facade.
	store := graphtempo.NewMatStore(g, schema)
	composed := store.UnionAll(tl.Range(0, 1))
	scratch := graphtempo.Aggregate(union, schema, graphtempo.All)
	if !composed.Equal(scratch) {
		t.Fatal("materialized composition differs from scratch")
	}
	cat := graphtempo.NewMatCatalog(g)
	if _, err := cat.Materialize(g.MustAttr("gender")); err != nil {
		t.Fatal(err)
	}
	if _, src, err := cat.UnionAll(tl.Range(0, 2), g.MustAttr("gender")); err != nil || src.String() != "t-distributive" {
		t.Fatalf("catalog source = %v, err %v", src, err)
	}
}

func TestFacadeBuilderAndIO(t *testing.T) {
	tl, err := graphtempo.NewTimeline("jan", "feb")
	if err != nil {
		t.Fatal(err)
	}
	b := graphtempo.NewBuilder(tl,
		graphtempo.AttrSpec{Name: "team", Kind: graphtempo.Static})
	n1 := b.AddNode("alice")
	n2 := b.AddNode("bob")
	b.SetNodeTime(n1, 0)
	b.SetNodeTime(n1, 1)
	b.SetNodeTime(n2, 1)
	b.SetStatic(0, n1, "core")
	b.SetStatic(0, n2, "infra")
	e := b.AddEdge(n1, n2)
	b.SetEdgeTime(e, 1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	if err := graphtempo.WriteGraphDir(g, dir); err != nil {
		t.Fatal(err)
	}
	back, err := graphtempo.ReadGraphDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumNodes() != 2 || back.NumEdges() != 1 {
		t.Fatalf("round trip sizes = %d/%d", back.NumNodes(), back.NumEdges())
	}

	stats := graphtempo.ComputeStats(back)
	if stats.Nodes[0] != 1 || stats.Nodes[1] != 2 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestFacadeDatasets(t *testing.T) {
	d := graphtempo.DBLPScaled(1, 0.01)
	if d.Timeline().Len() != 21 {
		t.Error("DBLP should span 21 years")
	}
	m := graphtempo.MovieLensScaled(1, 0.05)
	if m.Timeline().Len() != 6 {
		t.Error("MovieLens should span 6 months")
	}
	c := graphtempo.SchoolContacts(1, graphtempo.DefaultContactsParams())
	if _, ok := c.AttrByName("grade"); !ok {
		t.Error("contacts graph should have a grade attribute")
	}
	// Selector facades.
	tlm := m.Timeline()
	v := graphtempo.StabilityView(m, graphtempo.Exists(tlm.Point(0)), graphtempo.ForAllOf(tlm.Range(1, 2)))
	if v.NumNodes() == 0 {
		t.Error("stability view should keep retained users")
	}
	dv := graphtempo.DifferenceView(m, graphtempo.Exists(tlm.Point(1)), graphtempo.Exists(tlm.Point(0)))
	if dv.NumEdges() == 0 {
		t.Error("difference view should find new co-ratings")
	}
	// Materialize an operator output back into a graph.
	mg, err := graphtempo.Materialize(graphtempo.At(d, 0))
	if err != nil {
		t.Fatal(err)
	}
	if mg.NumNodes() == 0 {
		t.Error("materialized projection is empty")
	}
	// Rollup via facade.
	s, _ := graphtempo.SchemaByName(m, "gender", "age")
	ag := graphtempo.Aggregate(graphtempo.At(m, 0), s, graphtempo.Distinct)
	rolled, err := graphtempo.Rollup(ag, m.MustAttr("gender"))
	if err != nil {
		t.Fatal(err)
	}
	direct := graphtempo.Aggregate(graphtempo.At(m, 0), mustByName(t, m, "gender"), graphtempo.Distinct)
	if !rolled.Equal(direct) {
		t.Error("facade rollup differs from direct aggregation")
	}
	// Result-func facades.
	if _, err := graphtempo.NodeTupleResult(s, "F", "zz"); err == nil ||
		!strings.Contains(err.Error(), "domain") {
		t.Error("NodeTupleResult should reject out-of-domain values")
	}
}

func mustByName(t *testing.T, g *graphtempo.Graph, names ...string) *graphtempo.AggSchema {
	t.Helper()
	s, err := graphtempo.SchemaByName(g, names...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestFacadeCubeCoarsenIndex(t *testing.T) {
	g := graphtempo.PaperExample()

	// Cube.
	c, err := graphtempo.NewCube(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.MaterializeGreedy(1); err != nil {
		t.Fatal(err)
	}
	ag, src, err := c.Query(0, g.MustAttr("gender"))
	if err != nil {
		t.Fatal(err)
	}
	direct := graphtempo.Aggregate(graphtempo.At(g, 0),
		mustByName(t, g, "gender"), graphtempo.Distinct)
	if !ag.Equal(direct) {
		t.Errorf("cube answer (from %v) differs from direct aggregation", src)
	}

	// Coarsen.
	spec, err := graphtempo.UniformGroups(g.Timeline(), 2)
	if err != nil {
		t.Fatal(err)
	}
	coarse, err := graphtempo.Coarsen(g, spec)
	if err != nil {
		t.Fatal(err)
	}
	if coarse.Timeline().Len() != 2 {
		t.Errorf("coarse timeline = %d points, want 2", coarse.Timeline().Len())
	}

	// Indexed explorer equals the general one.
	s := mustByName(t, g, "gender")
	indexed, err := graphtempo.NewIndexedExplorer(s, []string{"f"}, []string{"f"})
	if err != nil {
		t.Fatal(err)
	}
	ff, err := graphtempo.EdgeTupleResult(s, []string{"f"}, []string{"f"})
	if err != nil {
		t.Fatal(err)
	}
	general := &graphtempo.Explorer{Graph: g, Schema: s, Kind: graphtempo.Distinct, Result: ff}
	a := indexed.Explore(graphtempo.Stability, graphtempo.UnionSemantics, graphtempo.ExtendNew, 1)
	bPairs := general.Explore(graphtempo.Stability, graphtempo.UnionSemantics, graphtempo.ExtendNew, 1)
	if len(a) != len(bPairs) {
		t.Errorf("indexed %d pairs, general %d", len(a), len(bPairs))
	}

	// TuneK through the facade type.
	k, pairs := general.TuneK(graphtempo.Stability, graphtempo.UnionSemantics, graphtempo.ExtendNew, 1)
	if k < 1 || len(pairs) == 0 {
		t.Errorf("TuneK = %d with %d pairs", k, len(pairs))
	}
}
